//! Optional pool instrumentation: an installable process-wide
//! [`MetricsRegistry`] the worker pool reports into.
//!
//! Nothing is recorded until [`install_pool_metrics`] runs — the fast path
//! costs one relaxed atomic load per `par_map_indexed` call — and recording
//! never influences scheduling or results (the pool's outputs are stitched
//! by index regardless).

use rmdp_observe::{MetricsRegistry, MonotonicClock};
use std::sync::{Arc, OnceLock};

static POOL_METRICS: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();

/// Fan-out size buckets for the `pool.queue_depth` histogram.
const QUEUE_DEPTH_BOUNDS: [f64; 6] = [1.0, 4.0, 16.0, 64.0, 256.0, 1024.0];

/// Per-worker busy-time buckets (seconds) for `pool.worker_busy_seconds`.
const BUSY_SECONDS_BOUNDS: [f64; 6] = [0.0001, 0.001, 0.01, 0.1, 1.0, 10.0];

/// Installs `registry` as the process-wide sink for pool metrics.
///
/// Returns `false` (and leaves the existing sink) if one was already
/// installed; the `OnceLock` cannot be replaced, which keeps the read path
/// lock-free.
pub fn install_pool_metrics(registry: Arc<MetricsRegistry>) -> bool {
    POOL_METRICS.set(registry).is_ok()
}

/// The installed registry, if any.
pub(crate) fn pool_metrics() -> Option<&'static Arc<MetricsRegistry>> {
    POOL_METRICS.get()
}

/// Records one parallel fan-out: `len` items queued across `workers`.
pub(crate) fn record_fanout(registry: &MetricsRegistry, len: usize, workers: usize) {
    registry.counter_add("pool.parallel_calls", 1);
    registry.counter_add("pool.tasks_queued", len as u64);
    registry.counter_add("pool.workers_spawned", workers as u64);
    registry.histogram_observe("pool.queue_depth", &QUEUE_DEPTH_BOUNDS, len as f64);
}

/// A per-worker busy-time measurement, started when the worker begins
/// claiming items and flushed when its loop ends.
pub(crate) struct WorkerTimer<'a> {
    registry: Option<&'a MetricsRegistry>,
    clock: Option<MonotonicClock>,
    tasks: usize,
}

impl<'a> WorkerTimer<'a> {
    /// Starts a timer (inert when no registry is installed).
    pub(crate) fn start(registry: Option<&'a MetricsRegistry>) -> Self {
        WorkerTimer {
            registry,
            clock: registry.map(|_| MonotonicClock::new()),
            tasks: 0,
        }
    }

    /// Counts one executed task.
    pub(crate) fn task_done(&mut self) {
        self.tasks += 1;
    }

    /// Flushes the busy time and task count to the registry.
    pub(crate) fn finish(self) {
        if let (Some(registry), Some(clock)) = (self.registry, self.clock) {
            use rmdp_observe::Clock;
            let busy = clock.now_nanos() as f64 / 1e9;
            registry.histogram_observe("pool.worker_busy_seconds", &BUSY_SECONDS_BOUNDS, busy);
            registry.counter_add("pool.tasks_executed", self.tasks as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_timer_is_inert_without_a_registry() {
        let mut timer = WorkerTimer::start(None);
        timer.task_done();
        timer.finish(); // must not panic
    }

    #[test]
    fn worker_timer_records_into_a_registry() {
        let registry = MetricsRegistry::new();
        record_fanout(&registry, 10, 3);
        let mut timer = WorkerTimer::start(Some(&registry));
        timer.task_done();
        timer.task_done();
        timer.finish();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("pool.parallel_calls"), Some(1));
        assert_eq!(snap.counter("pool.tasks_queued"), Some(10));
        assert_eq!(snap.counter("pool.workers_spawned"), Some(3));
        assert_eq!(snap.counter("pool.tasks_executed"), Some(2));
        assert_eq!(snap.histogram("pool.queue_depth").unwrap().count, 1);
        assert_eq!(snap.histogram("pool.worker_busy_seconds").unwrap().count, 1);
    }
}
