//! Admission control for a query server sitting in front of the pool.
//!
//! A long-lived multi-tenant server cannot let every incoming request fan
//! out onto the worker pool at once: the pool's scoped threads are cheap,
//! but `N` concurrent sequence computations each want the whole machine, and
//! unbounded queueing turns overload into unbounded latency. The
//! [`AdmissionGate`] is the load-shedding layer in front of the pool: at
//! most `max_in_flight` requests hold execution permits, at most
//! `max_waiting` more block in a bounded queue, and everything beyond that
//! is **refused immediately** with [`AdmissionError::Overloaded`] — a
//! refusal the server maps to a no-ε-consumed error response rather than a
//! stalled connection.
//!
//! The gate is a classic monitor (one [`Mutex`] + [`Condvar`]) written for
//! auditability under the project's determinism discipline:
//!
//! * Waiters re-check their predicate in a loop, so spurious wakeups are
//!   harmless by construction.
//! * Every state transition that can unblock anyone (`Permit` drop,
//!   [`AdmissionGate::shutdown`]) uses `notify_all`, so a wakeup can never
//!   be "lost" to a thread whose predicate it does not satisfy while a
//!   thread it does satisfy keeps sleeping.
//! * The in-flight count is only ever incremented under the lock by the
//!   thread that observed `in_flight < max_in_flight`, so the cap cannot be
//!   overshot by any interleaving.
//!
//! The schedule-exploration tests at the bottom drive the gate through
//! seeded pseudo-random interleavings (a deterministic LCG jitters each
//! thread's hold times per seed) and assert those three invariants — the
//! dependency-free stand-in for a model checker like `loom`.

use std::sync::{Condvar, Mutex};

/// The gate's two capacity knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// How many requests may execute concurrently. Admission past this
    /// count is impossible by construction.
    pub max_in_flight: usize,
    /// How many more requests may block waiting for an execution slot
    /// before the gate starts shedding load. `0` means refuse the moment
    /// all slots are busy.
    pub max_waiting: usize,
}

impl AdmissionConfig {
    /// A gate admitting `max_in_flight` concurrent requests with a waiting
    /// queue of the same depth — a reasonable default for a query server.
    pub fn with_in_flight(max_in_flight: usize) -> Self {
        AdmissionConfig {
            max_in_flight,
            max_waiting: max_in_flight,
        }
    }
}

/// Why the gate refused an [`AdmissionGate::enter`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// All execution slots were busy and the waiting queue was full. The
    /// request was shed immediately; nothing was queued and nothing ran.
    Overloaded {
        /// Requests holding execution permits at refusal time.
        in_flight: usize,
        /// Requests blocked in the bounded queue at refusal time.
        waiting: usize,
    },
    /// The gate has been [`AdmissionGate::shutdown`]; no new work is
    /// admitted (in-flight work keeps its permits until it finishes).
    ShuttingDown,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Overloaded { in_flight, waiting } => write!(
                f,
                "server overloaded: {in_flight} in flight, {waiting} waiting"
            ),
            AdmissionError::ShuttingDown => f.write_str("server shutting down"),
        }
    }
}

impl std::error::Error for AdmissionError {}

#[derive(Debug)]
struct GateState {
    in_flight: usize,
    waiting: usize,
    shutting_down: bool,
}

/// A bounded-queue admission gate: at most `max_in_flight` permits out, at
/// most `max_waiting` threads blocked, everything else refused immediately.
///
/// ```
/// use rmdp_runtime::{AdmissionConfig, AdmissionError, AdmissionGate};
///
/// let gate = AdmissionGate::new(AdmissionConfig {
///     max_in_flight: 1,
///     max_waiting: 0,
/// });
/// let permit = gate.enter().unwrap();
/// // The one slot is held and the queue depth is 0: shed immediately.
/// assert!(matches!(
///     gate.enter(),
///     Err(AdmissionError::Overloaded { in_flight: 1, .. })
/// ));
/// drop(permit);
/// assert!(gate.enter().is_ok());
/// ```
#[derive(Debug)]
pub struct AdmissionGate {
    config: AdmissionConfig,
    state: Mutex<GateState>,
    cond: Condvar,
}

impl AdmissionGate {
    /// A fresh gate with all slots free.
    pub fn new(config: AdmissionConfig) -> Self {
        assert!(config.max_in_flight >= 1, "need at least one slot");
        AdmissionGate {
            config,
            state: Mutex::new(GateState {
                in_flight: 0,
                waiting: 0,
                shutting_down: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// The gate's capacity knobs.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Requests an execution permit: returns immediately when a slot is
    /// free, blocks in the bounded queue when one may free up, and **refuses
    /// immediately** ([`AdmissionError::Overloaded`]) when the queue is full
    /// — the caller should shed the request without running anything.
    pub fn enter(&self) -> Result<Permit<'_>, AdmissionError> {
        let mut state = self.state.lock().expect("admission gate poisoned");
        if state.shutting_down {
            return Err(AdmissionError::ShuttingDown);
        }
        if state.in_flight < self.config.max_in_flight {
            state.in_flight += 1;
            return Ok(Permit { gate: self });
        }
        if state.waiting >= self.config.max_waiting {
            return Err(AdmissionError::Overloaded {
                in_flight: state.in_flight,
                waiting: state.waiting,
            });
        }
        state.waiting += 1;
        loop {
            state = self.cond.wait(state).expect("admission gate poisoned");
            if state.shutting_down {
                state.waiting -= 1;
                // A drain may be blocked on this waiter leaving.
                self.cond.notify_all();
                return Err(AdmissionError::ShuttingDown);
            }
            if state.in_flight < self.config.max_in_flight {
                state.waiting -= 1;
                state.in_flight += 1;
                return Ok(Permit { gate: self });
            }
        }
    }

    /// Stops admitting work: every future [`AdmissionGate::enter`] and every
    /// thread currently blocked in the queue gets
    /// [`AdmissionError::ShuttingDown`]. Requests already holding permits
    /// are unaffected — pair with [`AdmissionGate::drain`] to wait them out.
    pub fn shutdown(&self) {
        let mut state = self.state.lock().expect("admission gate poisoned");
        state.shutting_down = true;
        drop(state);
        self.cond.notify_all();
    }

    /// Blocks until no permits are out and no threads are queued. Callers
    /// almost always [`AdmissionGate::shutdown`] first; draining without
    /// shutting down only waits for a momentary idle point.
    pub fn drain(&self) {
        let mut state = self.state.lock().expect("admission gate poisoned");
        while state.in_flight > 0 || state.waiting > 0 {
            state = self.cond.wait(state).expect("admission gate poisoned");
        }
    }

    /// How many permits are out right now (for metrics; racy by nature).
    pub fn in_flight(&self) -> usize {
        self.state
            .lock()
            .expect("admission gate poisoned")
            .in_flight
    }

    /// How many threads are blocked in the queue right now (for metrics;
    /// racy by nature).
    pub fn waiting(&self) -> usize {
        self.state.lock().expect("admission gate poisoned").waiting
    }
}

/// An execution slot held on an [`AdmissionGate`]; dropping it frees the
/// slot and wakes the queue.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().expect("admission gate poisoned");
        state.in_flight -= 1;
        drop(state);
        // notify_all, not notify_one: a single wakeup could land on a
        // thread blocked in `drain` (whose predicate is still false) while
        // a queued `enter` keeps sleeping — the classic lost-wakeup shape.
        self.gate.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;
    use std::time::Duration;

    /// A tiny deterministic LCG so each schedule-exploration run is fixed
    /// by its seed (no `rand` dependency, no wall-clock entropy).
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    #[test]
    fn never_admits_past_the_in_flight_cap_under_seeded_schedules() {
        // 8 threads hammer a 3-slot gate under several seeded jitter
        // schedules; a high-water mark tracked inside the permit hold must
        // never exceed the cap.
        for seed in 0..6u64 {
            let gate = AdmissionGate::new(AdmissionConfig {
                max_in_flight: 3,
                max_waiting: 8,
            });
            let concurrent = AtomicUsize::new(0);
            let high_water = AtomicUsize::new(0);
            thread::scope(|s| {
                for t in 0..8u64 {
                    let gate = &gate;
                    let concurrent = &concurrent;
                    let high_water = &high_water;
                    s.spawn(move || {
                        let mut rng = Lcg(seed * 1000 + t);
                        for _ in 0..20 {
                            let permit = match gate.enter() {
                                Ok(p) => p,
                                Err(AdmissionError::Overloaded { .. }) => continue,
                                Err(AdmissionError::ShuttingDown) => return,
                            };
                            let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                            high_water.fetch_max(now, Ordering::SeqCst);
                            if rng.next().is_multiple_of(3) {
                                thread::sleep(Duration::from_micros(rng.next() % 50));
                            }
                            concurrent.fetch_sub(1, Ordering::SeqCst);
                            drop(permit);
                        }
                    });
                }
            });
            let peak = high_water.load(Ordering::SeqCst);
            assert!(peak <= 3, "seed {seed}: {peak} concurrent permits");
            assert_eq!(gate.in_flight(), 0);
            assert_eq!(gate.waiting(), 0);
        }
    }

    #[test]
    fn queued_threads_are_never_lost() {
        // One slot, deep queue: every entrant must eventually get the
        // permit (a lost wakeup would deadlock the scope and time the test
        // out). The scope joining at all is the assertion.
        let gate = AdmissionGate::new(AdmissionConfig {
            max_in_flight: 1,
            max_waiting: 64,
        });
        let served = AtomicUsize::new(0);
        thread::scope(|s| {
            for _ in 0..16 {
                let gate = &gate;
                let served = &served;
                s.spawn(move || {
                    for _ in 0..25 {
                        let permit = gate.enter().expect("queue is deep enough");
                        served.fetch_add(1, Ordering::SeqCst);
                        drop(permit);
                    }
                });
            }
        });
        assert_eq!(served.load(Ordering::SeqCst), 16 * 25);
    }

    #[test]
    fn sheds_immediately_when_the_queue_is_full() {
        let gate = AdmissionGate::new(AdmissionConfig {
            max_in_flight: 1,
            max_waiting: 0,
        });
        let held = gate.enter().unwrap();
        match gate.enter() {
            Err(AdmissionError::Overloaded { in_flight, waiting }) => {
                assert_eq!(in_flight, 1);
                assert_eq!(waiting, 0);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        drop(held);
        drop(gate.enter().unwrap());
    }

    #[test]
    fn shutdown_wakes_waiters_and_drains_cleanly() {
        let gate = AdmissionGate::new(AdmissionConfig {
            max_in_flight: 1,
            max_waiting: 8,
        });
        let shed = AtomicUsize::new(0);
        thread::scope(|s| {
            let holder = gate.enter().unwrap();
            // Waiters pile up behind the held slot …
            for _ in 0..4 {
                let gate = &gate;
                let shed = &shed;
                s.spawn(move || {
                    if matches!(gate.enter(), Err(AdmissionError::ShuttingDown)) {
                        shed.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            while gate.waiting() < 4 {
                thread::sleep(Duration::from_micros(50));
            }
            // … shutdown wakes all of them with ShuttingDown …
            gate.shutdown();
            // … and drain completes once the in-flight holder finishes.
            drop(holder);
            gate.drain();
            assert_eq!(gate.in_flight(), 0);
            assert_eq!(gate.waiting(), 0);
        });
        assert_eq!(shed.load(Ordering::SeqCst), 4);
        assert!(matches!(gate.enter(), Err(AdmissionError::ShuttingDown)));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_is_a_configuration_error() {
        let _ = AdmissionGate::new(AdmissionConfig {
            max_in_flight: 0,
            max_waiting: 0,
        });
    }
}
