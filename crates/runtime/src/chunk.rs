//! Fixed contiguous partitioning of an index range.
//!
//! [`contiguous_runs`] cuts `0..len` into runs of `run_len` (the last run
//! may be shorter). The cut points depend only on `len` and `run_len` —
//! *never* on the worker count — which is what lets a caller hand whole runs
//! to [`crate::par_map_indexed`] and stay bit-identical across every
//! [`crate::Parallelism`] setting: each run is computed exactly the same way
//! regardless of which worker (or the calling thread) ends up executing it.
//!
//! The motivating caller is the sequence-chain solver in `rmdp-core`: entries
//! of one `H`/`G` family are solved as a warm-started chain *within* a run
//! (each solve reuses the previous entry's optimal basis), while distinct
//! runs are independent cold starts that parallelise freely. Cutting by a
//! fixed run length instead of "one chunk per worker" trades a little warm
//! sharing for schedule-independent results.

use std::ops::Range;

/// Splits `0..len` into contiguous runs of `run_len` indices (the final run
/// holds the remainder). `run_len` is clamped to at least 1; `len == 0`
/// yields no runs.
pub fn contiguous_runs(len: usize, run_len: usize) -> Vec<Range<usize>> {
    let run_len = run_len.max(1);
    (0..len.div_ceil(run_len))
        .map(|k| run_at(len, run_len, k * run_len))
        .collect()
}

/// The run of [`contiguous_runs`]`(len, run_len)` containing index `i`
/// (`i < len`). Lazy callers use this to solve exactly the run a cache miss
/// falls into — sharing the cut-point arithmetic with the eager partition is
/// what keeps the two paths bit-identical.
pub fn run_containing(len: usize, run_len: usize, i: usize) -> Range<usize> {
    debug_assert!(i < len, "index {i} outside 0..{len}");
    let run_len = run_len.max(1);
    run_at(len, run_len, (i / run_len) * run_len)
}

fn run_at(len: usize, run_len: usize, start: usize) -> Range<usize> {
    start..(start + run_len).min(len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_cover_the_range_exactly_once() {
        for len in 0..40usize {
            for run_len in 1..10usize {
                let runs = contiguous_runs(len, run_len);
                let flat: Vec<usize> = runs.iter().cloned().flatten().collect();
                assert_eq!(flat, (0..len).collect::<Vec<_>>(), "{len}/{run_len}");
                for run in &runs {
                    assert!(run.len() <= run_len);
                    assert!(!run.is_empty());
                }
            }
        }
    }

    #[test]
    fn run_len_zero_is_clamped() {
        assert_eq!(contiguous_runs(3, 0), vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn run_containing_agrees_with_the_partition() {
        for len in 1..40usize {
            for run_len in 0..10usize {
                let runs = contiguous_runs(len, run_len);
                for i in 0..len {
                    let run = run_containing(len, run_len, i);
                    assert!(run.contains(&i));
                    assert!(runs.contains(&run), "{len}/{run_len}/{i}: {run:?}");
                }
            }
        }
    }

    #[test]
    fn cut_points_do_not_depend_on_anything_but_len_and_run_len() {
        assert_eq!(contiguous_runs(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(contiguous_runs(8, 4), vec![0..4, 4..8]);
        assert_eq!(contiguous_runs(1, 4), vec![0..1]);
        assert!(contiguous_runs(0, 4).is_empty());
    }
}
