//! The parallelism knob.

use std::num::NonZeroUsize;

/// How much hardware parallelism a computation may use.
///
/// The knob travels inside `MechanismParams`, so it has to be `Copy` and
/// comparable; `Auto` resolves against the machine lazily (at
/// [`Parallelism::workers`] time), not at construction time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// Run on the calling thread, spawning nothing. The default: it adds no
    /// thread-creation overhead to small queries and is the reference the
    /// parallel paths must match bit-for-bit.
    #[default]
    Serial,
    /// Use exactly `n` workers (`n = 0` or `1` behaves like `Serial`).
    Threads(usize),
    /// Use one worker per available CPU
    /// ([`std::thread::available_parallelism`]; falls back to 1 if the
    /// platform cannot say).
    Auto,
}

impl Parallelism {
    /// The number of workers this knob resolves to on the current machine
    /// (always at least 1).
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// Whether this knob can spawn worker threads (more than one worker).
    pub fn is_parallel(self) -> bool {
        self.workers() > 1
    }

    /// Parses a CLI/env-style spelling: `serial`, `auto`, or a worker count.
    pub fn parse(s: &str) -> Result<Parallelism, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "serial" | "none" | "1" => Ok(Parallelism::Serial),
            "auto" => Ok(Parallelism::Auto),
            other => other
                .parse::<usize>()
                .map(Parallelism::Threads)
                .map_err(|_| {
                    format!("invalid parallelism '{s}' (expected 'serial', 'auto' or a number)")
                }),
        }
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parallelism::Serial => write!(f, "serial"),
            Parallelism::Threads(n) => write!(f, "{n} threads"),
            Parallelism::Auto => write!(f, "auto"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_resolution() {
        assert_eq!(Parallelism::Serial.workers(), 1);
        assert_eq!(Parallelism::Threads(0).workers(), 1);
        assert_eq!(Parallelism::Threads(1).workers(), 1);
        assert_eq!(Parallelism::Threads(6).workers(), 6);
        assert!(Parallelism::Auto.workers() >= 1);
    }

    #[test]
    fn is_parallel_matches_worker_count() {
        assert!(!Parallelism::Serial.is_parallel());
        assert!(!Parallelism::Threads(1).is_parallel());
        assert!(Parallelism::Threads(2).is_parallel());
    }

    #[test]
    fn parsing_round_trips_the_cli_spellings() {
        assert_eq!(Parallelism::parse("serial").unwrap(), Parallelism::Serial);
        assert_eq!(Parallelism::parse("AUTO").unwrap(), Parallelism::Auto);
        assert_eq!(Parallelism::parse("4").unwrap(), Parallelism::Threads(4));
        assert_eq!(Parallelism::parse("1").unwrap(), Parallelism::Serial);
        assert!(Parallelism::parse("many").is_err());
    }

    #[test]
    fn default_is_serial() {
        assert_eq!(Parallelism::default(), Parallelism::Serial);
    }
}
