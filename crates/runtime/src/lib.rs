//! A scoped worker pool for the embarrassingly parallel parts of the
//! recursive mechanism (no dependencies beyond the workspace's own
//! `rmdp-observe` telemetry crate).
//!
//! The mechanism's cost is dominated by the `2(|P|+1)` independent LP solves
//! behind the sequences `H_0…H_{|P|}` and `G_0…G_{|P|}` (paper Sec. 5.3):
//! each entry is its own linear program over a shared immutable view of the
//! query, so the solves parallelise perfectly across the index `i`. This
//! crate provides the runtime those call sites share:
//!
//! * [`Parallelism`] — the user-facing knob (`Serial`, `Threads(n)` or
//!   `Auto`), threaded through `MechanismParams` one crate up.
//! * [`par_map_indexed`] / [`par_try_map_indexed`] — map a function over
//!   `0..len` on a scoped worker pool ([`std::thread::scope`], so borrowed
//!   data flows into workers without `'static` bounds) with **deterministic
//!   result ordering**: the output vector is always indexed by input index,
//!   regardless of which worker computed which entry, and the first error in
//!   *index* order (not completion order) is the one reported.
//! * [`contiguous_runs`] — fixed, worker-count-independent partitioning of
//!   an index range into contiguous runs, for callers whose items form
//!   warm-start chains (consecutive sequence-entry LPs): a run is one chain
//!   executed on one worker, so warm starts survive parallelism without
//!   making the results depend on the schedule.
//! * [`install_pool_metrics`] — optional observability: once a
//!   [`MetricsRegistry`](rmdp_observe::MetricsRegistry) is installed, every
//!   fan-out reports queue depth and per-worker busy time into it. Until
//!   then the pool pays one relaxed atomic load per call and records
//!   nothing; recording never affects scheduling or results.
//!
//! The pool is deliberately tiny: an atomic next-index counter hands indices
//! to workers (good load balancing when items have very different costs, as
//! LP sizes do), each worker accumulates `(index, value)` pairs locally, and
//! the results are stitched back in index order at the end. There are no
//! locks on the hot path and no shared mutable state beyond the counter.
//!
//! ```
//! use rmdp_runtime::{par_map_indexed, Parallelism};
//!
//! let squares = par_map_indexed(Parallelism::Threads(4), 8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```
//!
//! Determinism contract: for a pure `f`, `par_map_indexed(p, len, f)`
//! returns the same vector for every `p` — callers in `rmdp-core` rely on
//! this to make the parallel mechanism bit-identical to the serial one.

#![deny(missing_docs)]

pub mod admission;
pub mod chunk;
pub mod metrics;
pub mod parallelism;
pub mod pool;

pub use admission::{AdmissionConfig, AdmissionError, AdmissionGate, Permit};
pub use chunk::{contiguous_runs, run_containing};
pub use metrics::install_pool_metrics;
pub use parallelism::Parallelism;
pub use pool::{par_map_indexed, par_try_map_indexed};
