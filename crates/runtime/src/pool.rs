//! The scoped worker pool and its `par_map_indexed` primitive.

use crate::metrics::{pool_metrics, record_fanout, WorkerTimer};
use crate::parallelism::Parallelism;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Maps `f` over `0..len` using up to `parallelism.workers()` scoped worker
/// threads and returns the results **in index order**.
///
/// Work distribution is dynamic (an atomic next-index counter), so items with
/// wildly different costs — LP sizes grow with the index `i` of the sequence
/// entry — still balance across workers. Because `std::thread::scope` is
/// used, `f` may borrow from the caller's stack; because results are placed
/// by index, the output is independent of scheduling.
///
/// A panic in `f` is resumed on the calling thread after the scope joins.
pub fn par_map_indexed<T, F>(parallelism: Parallelism, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = parallelism.workers().min(len);
    if workers <= 1 {
        return (0..len).map(f).collect();
    }

    let metrics = pool_metrics().map(|r| r.as_ref());
    if let Some(registry) = metrics {
        record_fanout(registry, len, workers);
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut timer = WorkerTimer::start(metrics);
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        local.push((i, f(i)));
                        timer.task_done();
                    }
                    timer.finish();
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|payload| resume_unwind(payload)))
            .collect()
    });

    // Stitch the per-worker runs back into index order.
    let mut slots: Vec<Option<T>> = (0..len).map(|_| None).collect();
    for run in per_worker {
        for (i, value) in run {
            debug_assert!(slots[i].is_none(), "index {i} produced twice");
            slots[i] = Some(value);
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index in 0..len is claimed exactly once"))
        .collect()
}

/// Fallible variant of [`par_map_indexed`]: maps `f` over `0..len` and
/// returns either every success (in index order) or one error.
///
/// Failure cancels the pool early: once any item fails, workers stop
/// claiming new indices (items already in flight finish), so a batch whose
/// first item errors does not pay for the whole batch. The reported error is
/// the one with the **smallest index among the items that ran** — serially
/// that is simply the first failure, and with a single failing item it is
/// that item for every `Parallelism`. The success path is unconditionally
/// deterministic.
pub fn par_try_map_indexed<T, E, F>(parallelism: Parallelism, len: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let workers = parallelism.workers().min(len);
    if workers <= 1 {
        // Serial fast path: stop at the first (= smallest-index) failure.
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            out.push(f(i)?);
        }
        return Ok(out);
    }

    let metrics = pool_metrics().map(|r| r.as_ref());
    if let Some(registry) = metrics {
        record_fanout(registry, len, workers);
    }
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let f = &f;
    let next = &next;
    let failed = &failed;
    let per_worker: Vec<Vec<(usize, Result<T, E>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut timer = WorkerTimer::start(metrics);
                    let mut local = Vec::new();
                    while !failed.load(Ordering::Relaxed) {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        let result = f(i);
                        if result.is_err() {
                            failed.store(true, Ordering::Relaxed);
                        }
                        local.push((i, result));
                        timer.task_done();
                    }
                    timer.finish();
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|payload| resume_unwind(payload)))
            .collect()
    });

    let mut slots: Vec<Option<T>> = (0..len).map(|_| None).collect();
    let mut first_error: Option<(usize, E)> = None;
    for run in per_worker {
        for (i, result) in run {
            match result {
                Ok(value) => slots[i] = Some(value),
                Err(e) => {
                    if first_error.as_ref().is_none_or(|(j, _)| i < *j) {
                        first_error = Some((i, e));
                    }
                }
            }
        }
    }
    if let Some((_, e)) = first_error {
        return Err(e);
    }
    Ok(slots
        .into_iter()
        .map(|slot| slot.expect("no failure, so every index completed"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_index_order_for_every_parallelism() {
        let expected: Vec<usize> = (0..100).map(|i| i * 3 + 1).collect();
        for p in [
            Parallelism::Serial,
            Parallelism::Threads(2),
            Parallelism::Threads(7),
            Parallelism::Auto,
        ] {
            assert_eq!(par_map_indexed(p, 100, |i| i * 3 + 1), expected, "{p}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs_work() {
        assert_eq!(par_map_indexed(Parallelism::Threads(8), 0, |i| i), vec![]);
        assert_eq!(par_map_indexed(Parallelism::Threads(8), 1, |i| i), vec![0]);
    }

    #[test]
    fn workers_can_borrow_from_the_caller() {
        let data: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let doubled = par_map_indexed(Parallelism::Threads(4), data.len(), |i| data[i] * 2.0);
        assert_eq!(doubled[49], 98.0);
    }

    #[test]
    fn every_index_is_computed_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = par_map_indexed(Parallelism::Threads(5), 64, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 64);
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn try_map_reports_the_single_failing_index_for_every_parallelism() {
        for p in [Parallelism::Serial, Parallelism::Threads(4)] {
            let result: Result<Vec<usize>, usize> =
                par_try_map_indexed(p, 100, |i| if i == 17 { Err(i) } else { Ok(i) });
            assert_eq!(result.unwrap_err(), 17, "{p}");
        }
    }

    #[test]
    fn serial_try_map_reports_the_first_of_several_failures() {
        let result: Result<Vec<usize>, usize> =
            par_try_map_indexed(Parallelism::Serial, 100, |i| {
                if i % 30 == 17 {
                    Err(i)
                } else {
                    Ok(i)
                }
            });
        assert_eq!(result.unwrap_err(), 17);
    }

    #[test]
    fn failure_cancels_remaining_work() {
        // Index 0 fails instantly; every other item sleeps long enough for
        // the cancellation flag to be seen. At most the items already in
        // flight when the flag flips can still run, so the call count stays
        // far below `len`.
        let calls = AtomicUsize::new(0);
        let workers = 4;
        let result: Result<Vec<usize>, &str> =
            par_try_map_indexed(Parallelism::Threads(workers), 1000, |i| {
                calls.fetch_add(1, Ordering::Relaxed);
                if i == 0 {
                    Err("boom")
                } else {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    Ok(i)
                }
            });
        assert_eq!(result.unwrap_err(), "boom");
        let total = calls.load(Ordering::Relaxed);
        assert!(total < 1000 / 2, "cancellation did not help: {total} calls");
    }

    #[test]
    fn try_map_succeeds_when_nothing_fails() {
        let result: Result<Vec<usize>, ()> =
            par_try_map_indexed(Parallelism::Threads(3), 10, |i| Ok(i + 1));
        assert_eq!(result.unwrap(), (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let caught = std::panic::catch_unwind(|| {
            par_map_indexed(Parallelism::Threads(3), 16, |i| {
                if i == 5 {
                    panic!("boom at {i}");
                }
                i
            })
        });
        assert!(caught.is_err());
    }
}
