//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! 1. flattened n-ary `∧` LP encoding vs a binary-tree encoding (simulated by
//!    chaining pairwise conjunctions in the annotation itself — the paper's
//!    invariant transformations guarantee identical `φ`, so identical
//!    optima), and
//! 2. DNF expansion of CNF annotations (smaller φ-sensitivity, larger
//!    expressions) vs the raw CNF annotation.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rmdp_core::efficient::EfficientSequences;
use rmdp_core::sequences::MechanismSequences;
use rmdp_core::SensitiveKRelation;
use rmdp_experiments::workloads::{random_krelation, ExpressionShape, RandomKRelationSpec};
use rmdp_krelation::dnf::Dnf;
use rmdp_krelation::participant::ParticipantId;
use rmdp_krelation::Expr;

/// Rewrites every n-ary conjunction/disjunction into a right-leaning binary
/// chain (a φ-preserving transformation) to measure the cost of the naive
/// encoding.
fn binarize(expr: &Expr) -> Expr {
    match expr {
        Expr::And(children) => children
            .iter()
            .map(binarize)
            .reduce(|a, b| Expr::And(vec![a, b]))
            .unwrap_or(Expr::True),
        Expr::Or(children) => children
            .iter()
            .map(binarize)
            .reduce(|a, b| Expr::Or(vec![a, b]))
            .unwrap_or(Expr::False),
        other => other.clone(),
    }
}

fn krelation_with(shape: ExpressionShape, support: usize, clauses: usize) -> SensitiveKRelation {
    let mut rng = StdRng::seed_from_u64(17);
    random_krelation(
        RandomKRelationSpec {
            support,
            clauses,
            literals_per_clause: 3,
            shape,
        },
        &mut rng,
    )
}

fn rebuild(query: &SensitiveKRelation, transform: impl Fn(&Expr) -> Expr) -> SensitiveKRelation {
    let participants: Vec<ParticipantId> = query.participants().to_vec();
    let terms: Vec<(Expr, f64)> = query
        .terms()
        .iter()
        .map(|(e, w)| (transform(e), *w))
        .collect();
    SensitiveKRelation::from_terms(participants, terms)
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);

    // 1. n-ary vs binarized encoding on a DNF workload.
    let dnf = krelation_with(ExpressionShape::Dnf, 80, 3);
    let dnf_binary = rebuild(&dnf, binarize);
    let mass = dnf.num_participants() - 2;
    group.bench_function("lp_encoding_nary", |b| {
        b.iter(|| {
            let mut seq = EfficientSequences::new(dnf.clone());
            criterion::black_box(seq.h(mass).unwrap())
        })
    });
    group.bench_function("lp_encoding_binary_chain", |b| {
        b.iter(|| {
            let mut seq = EfficientSequences::new(dnf_binary.clone());
            criterion::black_box(seq.h(mass).unwrap())
        })
    });

    // 2. raw CNF annotations vs their DNF expansion.
    let cnf = krelation_with(ExpressionShape::Cnf, 60, 3);
    let cnf_expanded = rebuild(&cnf, |e| {
        Dnf::expand(e, 4096)
            .expect("3-clause CNF expands within budget")
            .canonicalize()
            .to_expr()
    });
    let mass_cnf = cnf.num_participants() - 2;
    group.bench_function("cnf_raw_annotation", |b| {
        b.iter(|| {
            let mut seq = EfficientSequences::new(cnf.clone());
            criterion::black_box(seq.g(mass_cnf).unwrap())
        })
    });
    group.bench_function("cnf_expanded_to_dnf", |b| {
        b.iter(|| {
            let mut seq = EfficientSequences::new(cnf_expanded.clone());
            criterion::black_box(seq.g(mass_cnf).unwrap())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
