//! Parallel scaling of the sequence precomputation (the `2(|P|+1)` entry
//! LPs of the efficient instantiation) on the fig-4 subgraph workloads.
//!
//! Each benchmark builds the sensitive K-relation once, then times a cold
//! `precompute` of every `H_i`/`G_i` entry at 1 (serial), 2, 4 and 8
//! workers. The LP solves are independent, so on a machine with `w` idle
//! cores the expected speedup at `w` workers approaches `w` (modulo the
//! skew between small-`i` and large-`i` LPs, which the pool's dynamic
//! index-stealing smooths out). Run with:
//!
//! ```text
//! cargo bench -p rmdp-experiments --bench parallel_scaling
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rmdp_core::params::MechanismParams;
use rmdp_core::subgraph::{PrivacyUnit, SubgraphCounter};
use rmdp_core::{EfficientSequences, MechanismSequences, Parallelism, SensitiveKRelation};
use rmdp_graph::{generators, Pattern};

/// The fig-4 workload: triangle counting under node privacy on a G(n, p)
/// graph with the paper's average degree 10.
fn fig4_relation(nodes: usize) -> SensitiveKRelation {
    let mut rng = StdRng::seed_from_u64(7);
    let graph = generators::gnp_average_degree(nodes, 10.0, &mut rng);
    let counter = SubgraphCounter::new(
        Pattern::triangle(),
        PrivacyUnit::Node,
        MechanismParams::paper_node_privacy(0.5),
    );
    counter.build_sensitive_relation(&graph)
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling_fig4_triangle_node");
    group.sample_size(5);
    for &nodes in &[40usize, 60] {
        let relation = fig4_relation(nodes);
        for workers in [1usize, 2, 4, 8] {
            let parallelism = if workers == 1 {
                Parallelism::Serial
            } else {
                Parallelism::Threads(workers)
            };
            group.bench_with_input(
                BenchmarkId::new(format!("precompute_{nodes}nodes"), workers),
                &workers,
                |b, _| {
                    b.iter(|| {
                        // Fresh instance every iteration: the caches must be
                        // cold for all 2(|P|+1) LPs to actually solve.
                        let mut seq = EfficientSequences::new(relation.clone());
                        seq.precompute(parallelism).unwrap();
                        criterion::black_box(seq.stats().total_pivots)
                    })
                },
            );
        }
    }
    group.finish();
}

/// The two-star workload of fig-4's second query family, smaller because the
/// K-relation support grows like Σ deg², at the same worker grid.
fn bench_parallel_scaling_two_star(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling_fig4_twostar_node");
    group.sample_size(3);
    let mut rng = StdRng::seed_from_u64(11);
    let graph = generators::gnp_average_degree(24, 4.0, &mut rng);
    let counter = SubgraphCounter::new(
        Pattern::k_star(2),
        PrivacyUnit::Node,
        MechanismParams::paper_node_privacy(0.5),
    );
    let relation = counter.build_sensitive_relation(&graph);
    for workers in [1usize, 2, 4, 8] {
        let parallelism = if workers == 1 {
            Parallelism::Serial
        } else {
            Parallelism::Threads(workers)
        };
        group.bench_with_input(
            BenchmarkId::new("precompute_24nodes", workers),
            &workers,
            |b, _| {
                b.iter(|| {
                    let mut seq = EfficientSequences::new(relation.clone());
                    seq.precompute(parallelism).unwrap();
                    criterion::black_box(seq.stats().total_pivots)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_parallel_scaling,
    bench_parallel_scaling_two_star
);
criterion_main!(benches);
