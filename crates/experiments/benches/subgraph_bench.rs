//! Micro-benchmark of subgraph enumeration (the non-private part of the
//! pipeline, excluded from the paper's reported times but needed to build the
//! K-relation).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rmdp_graph::subgraph::{k_star_count, k_triangles, triangles};
use rmdp_graph::{generators, Pattern};

fn bench_subgraph(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let graph = generators::gnp_average_degree(200, 10.0, &mut rng);

    c.bench_function("triangles_200_nodes", |b| {
        b.iter(|| criterion::black_box(triangles(&graph).len()))
    });
    c.bench_function("k_star_count_200_nodes", |b| {
        b.iter(|| criterion::black_box(k_star_count(&graph, 2)))
    });
    c.bench_function("k_triangles_200_nodes", |b| {
        b.iter(|| criterion::black_box(k_triangles(&graph, 2, usize::MAX).len()))
    });

    let small = generators::gnp_average_degree(60, 8.0, &mut rng);
    c.bench_function("generic_pattern_4cycle_60_nodes", |b| {
        b.iter(|| {
            criterion::black_box(
                rmdp_graph::subgraph::enumerate_pattern(&small, &Pattern::cycle(4), usize::MAX)
                    .len(),
            )
        })
    });
}

criterion_group!(benches, bench_subgraph);
criterion_main!(benches);
