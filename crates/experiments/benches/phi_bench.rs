//! Micro-benchmark of the relaxation `φ` and the φ-sensitivity computation.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rmdp_experiments::workloads::{random_krelation, ExpressionShape, RandomKRelationSpec};
use rmdp_krelation::phi::{phi, phi_sensitivities};

fn bench_phi(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let query = random_krelation(
        RandomKRelationSpec {
            support: 500,
            clauses: 4,
            literals_per_clause: 3,
            shape: ExpressionShape::Dnf,
        },
        &mut rng,
    );
    let assignment: Vec<f64> = (0..query.num_participants())
        .map(|i| (i % 10) as f64 / 10.0)
        .collect();

    c.bench_function("phi_eval_500_terms", |b| {
        b.iter(|| {
            let total: f64 = query
                .terms()
                .iter()
                .map(|(e, w)| w * phi(e, &assignment))
                .sum();
            criterion::black_box(total)
        })
    });

    c.bench_function("phi_sensitivities_500_terms", |b| {
        b.iter(|| {
            let total: f64 = query
                .terms()
                .iter()
                .map(|(e, _)| phi_sensitivities(e).values().sum::<f64>())
                .sum();
            criterion::black_box(total)
        })
    });
}

criterion_group!(benches, bench_phi);
criterion_main!(benches);
