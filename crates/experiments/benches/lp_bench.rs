//! Micro-benchmark of the simplex solver on the LP shapes the efficient
//! mechanism produces (hinge epigraphs over the capped simplex): one-shot
//! solves on both backends, plus the standardize-once warm-started chain
//! that the `H`/`G` sequence computation runs on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rmdp_lp::{Model, Sense, SimplexOptions, SolverBackend};

/// Builds the H-style LP for `tuples` random 3-variable hinges over
/// `participants` variables with mass `i`.
fn hinge_lp(participants: usize, tuples: usize, mass: f64, rng: &mut StdRng) -> Model {
    let mut m = Model::new(Sense::Minimize);
    let f: Vec<_> = (0..participants).map(|_| m.add_unit_var(0.0)).collect();
    for _ in 0..tuples {
        let v = m.add_nonneg_var(1.0);
        let a = rng.gen_range(0..participants);
        let b = rng.gen_range(0..participants);
        let c = rng.gen_range(0..participants);
        m.add_ge([(v, 1.0), (f[a], -1.0), (f[b], -1.0), (f[c], -1.0)], -2.0);
    }
    m.add_eq(f.iter().map(|&x| (x, 1.0)), mass);
    m
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_hinge_lp");
    group.sample_size(10);
    for &(participants, tuples) in &[(30usize, 50usize), (60, 150), (100, 300)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{participants}p_{tuples}t")),
            &(participants, tuples),
            |b, &(participants, tuples)| {
                let mut rng = StdRng::seed_from_u64(1);
                let model = hinge_lp(participants, tuples, participants as f64 - 1.0, &mut rng);
                b.iter(|| model.solve().expect("solvable"));
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{participants}p_{tuples}t_dense_oracle")),
            &(participants, tuples),
            |b, &(participants, tuples)| {
                let mut rng = StdRng::seed_from_u64(1);
                let model = hinge_lp(participants, tuples, participants as f64 - 1.0, &mut rng);
                let options = SimplexOptions {
                    backend: SolverBackend::DenseTableau,
                    ..SimplexOptions::default()
                };
                b.iter(|| model.solve_with(&options).expect("solvable"));
            },
        );
    }
    group.finish();
}

/// The sequence-chain access pattern: standardize once, then walk the mass
/// index `0..=participants` warm-starting each solve from the previous
/// optimal basis — versus re-solving every step cold.
fn bench_warm_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_mass_chain");
    group.sample_size(10);
    for &(participants, tuples) in &[(30usize, 50usize), (60, 150)] {
        let mut rng = StdRng::seed_from_u64(1);
        let model = hinge_lp(participants, tuples, 0.0, &mut rng);
        let mass_row = tuples; // the mass equality is added after the hinges
        let options = SimplexOptions::default();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{participants}p_{tuples}t_warm")),
            &model,
            |b, model| {
                b.iter(|| {
                    let mut prepared = model.prepare().expect("valid model");
                    let mut basis = None;
                    for i in 0..=participants {
                        prepared.set_rhs(mass_row, i as f64);
                        let solved = match &basis {
                            None => prepared.solve(&options),
                            Some(prev) => prepared.solve_warm(prev, &options),
                        }
                        .expect("solvable");
                        basis = Some(solved.basis);
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{participants}p_{tuples}t_cold")),
            &model,
            |b, model| {
                b.iter(|| {
                    let mut prepared = model.prepare().expect("valid model");
                    for i in 0..=participants {
                        prepared.set_rhs(mass_row, i as f64);
                        prepared.solve(&options).expect("solvable");
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simplex, bench_warm_chain);
criterion_main!(benches);
