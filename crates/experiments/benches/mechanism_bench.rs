//! End-to-end benchmark of the recursive mechanism: preparation (K-relation +
//! Δ) and the marginal cost of one additional release.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rmdp_core::params::MechanismParams;
use rmdp_core::subgraph::{PrivacyUnit, SubgraphCounter};
use rmdp_graph::{generators, Pattern};

fn bench_mechanism(c: &mut Criterion) {
    let mut group = c.benchmark_group("recursive_mechanism_triangle");
    group.sample_size(10);
    for &nodes in &[30usize, 60, 90] {
        let mut rng = StdRng::seed_from_u64(7);
        let graph = generators::gnp_average_degree(nodes, 10.0, &mut rng);

        group.bench_with_input(
            BenchmarkId::new("prepare_plus_release_node", nodes),
            &nodes,
            |b, _| {
                b.iter(|| {
                    let counter = SubgraphCounter::new(
                        Pattern::triangle(),
                        PrivacyUnit::Node,
                        MechanismParams::paper_node_privacy(0.5),
                    );
                    let mut rng = StdRng::seed_from_u64(11);
                    criterion::black_box(counter.release(&graph, &mut rng).unwrap().noisy_count)
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("marginal_release_edge", nodes),
            &nodes,
            |b, _| {
                let counter = SubgraphCounter::new(
                    Pattern::triangle(),
                    PrivacyUnit::Edge,
                    MechanismParams::paper_edge_privacy(0.5),
                );
                let mut prepared = counter.prepare(&graph).unwrap();
                let mut rng = StdRng::seed_from_u64(13);
                // Warm the caches so the measured cost is the marginal one.
                let _ = prepared.release_many(3, &mut rng).unwrap();
                b.iter(|| criterion::black_box(prepared.release(&mut rng).unwrap().noisy_count))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mechanism);
criterion_main!(benches);
