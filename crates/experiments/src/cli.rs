//! Minimal command-line parsing shared by the experiment binaries.
//!
//! Hand-rolled on purpose (the approved dependency set contains no argument
//! parser): flags are `--scale`, `--seed`, `--trials`, `--csv`, `--panel`.

use crate::scale::Scale;

/// Options shared by every experiment binary.
#[derive(Clone, Debug)]
pub struct CliOptions {
    /// Grid preset.
    pub scale: Scale,
    /// Random seed (experiments are fully deterministic given the seed).
    pub seed: u64,
    /// Releases per graph; `None` uses the scale default.
    pub trials: Option<usize>,
    /// Optional CSV output path.
    pub csv: Option<String>,
    /// Panel selector for multi-panel figures (`a`, `b`, `c`).
    pub panel: Option<String>,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            scale: Scale::Quick,
            seed: 42,
            trials: None,
            csv: None,
            panel: None,
        }
    }
}

impl CliOptions {
    /// Parses the given iterator of arguments (without the program name).
    pub fn parse<I, S>(args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut options = CliOptions::default();
        let mut iter = args.into_iter().map(Into::into).peekable();
        while let Some(arg) = iter.next() {
            let mut next_value = |flag: &str| -> Result<String, String> {
                iter.next().ok_or_else(|| format!("{flag} expects a value"))
            };
            match arg.as_str() {
                "--scale" => options.scale = next_value("--scale")?.parse()?,
                "--seed" => {
                    options.seed = next_value("--seed")?
                        .parse()
                        .map_err(|e| format!("invalid --seed: {e}"))?;
                }
                "--trials" => {
                    options.trials = Some(
                        next_value("--trials")?
                            .parse()
                            .map_err(|e| format!("invalid --trials: {e}"))?,
                    );
                }
                "--csv" => options.csv = Some(next_value("--csv")?),
                "--panel" => options.panel = Some(next_value("--panel")?),
                "--help" | "-h" => {
                    return Err(
                        "usage: [--scale quick|paper|full] [--seed N] [--trials N] [--csv PATH] [--panel a|b|c]"
                            .to_owned(),
                    );
                }
                other => return Err(format!("unknown argument '{other}'")),
            }
        }
        Ok(options)
    }

    /// Parses `std::env::args()` and exits with a message on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// The number of trials to run (explicit flag or scale default).
    pub fn trials(&self) -> usize {
        self.trials.unwrap_or_else(|| self.scale.default_trials())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_quick_and_deterministic() {
        let o = CliOptions::parse(Vec::<String>::new()).unwrap();
        assert_eq!(o.scale, Scale::Quick);
        assert_eq!(o.seed, 42);
        assert_eq!(o.trials(), Scale::Quick.default_trials());
    }

    #[test]
    fn all_flags_parse() {
        let o = CliOptions::parse([
            "--scale",
            "paper",
            "--seed",
            "7",
            "--trials",
            "33",
            "--csv",
            "/tmp/x.csv",
            "--panel",
            "b",
        ])
        .unwrap();
        assert_eq!(o.scale, Scale::Paper);
        assert_eq!(o.seed, 7);
        assert_eq!(o.trials(), 33);
        assert_eq!(o.csv.as_deref(), Some("/tmp/x.csv"));
        assert_eq!(o.panel.as_deref(), Some("b"));
    }

    #[test]
    fn unknown_flags_and_missing_values_are_rejected() {
        assert!(CliOptions::parse(["--bogus"]).is_err());
        assert!(CliOptions::parse(["--seed"]).is_err());
        assert!(CliOptions::parse(["--scale", "enormous"]).is_err());
        assert!(CliOptions::parse(["--help"]).is_err());
    }
}
