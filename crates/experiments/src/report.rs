//! Plain-text tables and CSV output for the experiment runners.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned table accumulated row by row.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as there are headers).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width does not match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as column-aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut header_line = String::new();
        for (w, h) in widths.iter().zip(&self.headers) {
            let _ = write!(header_line, "{h:<w$}  ");
        }
        let _ = writeln!(out, "{}", header_line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(header_line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(line, "{cell:<w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            let _ = writeln!(out, "{}", escaped.join(","));
        }
        fs::write(path, out)
    }
}

/// Formats a float compactly for table cells.
pub fn fmt_float(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    let a = x.abs();
    if a == 0.0 {
        "0".to_owned()
    } else if !(0.001..1000.0).contains(&a) {
        format!("{x:.3e}")
    } else if a >= 10.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Formats a duration in seconds.
pub fn fmt_secs(secs: f64) -> String {
    if secs < 0.001 {
        format!("{:.1}us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.1}ms", secs * 1e3)
    } else {
        format!("{secs:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("demo", &["x", "value"]);
        t.push_row(vec!["1".into(), "short".into()]);
        t.push_row(vec!["200".into(), "a much longer cell".into()]);
        let rendered = t.render();
        assert!(rendered.contains("== demo =="));
        assert!(rendered.contains("x    value"));
        assert!(rendered.contains("200  a much longer cell"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("demo", &["name", "note"]);
        t.push_row(vec!["a,b".into(), "say \"hi\"".into()]);
        let dir = std::env::temp_dir().join("rmdp_report_test.csv");
        t.write_csv(&dir).unwrap();
        let contents = std::fs::read_to_string(&dir).unwrap();
        assert!(contents.contains("\"a,b\""));
        assert!(contents.contains("\"say \"\"hi\"\"\""));
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn float_and_duration_formatting() {
        assert_eq!(fmt_float(0.0), "0");
        assert_eq!(fmt_float(12345.678), "1.235e4");
        assert_eq!(fmt_float(0.25), "0.2500");
        assert_eq!(fmt_float(42.0), "42.00");
        assert!(fmt_float(f64::INFINITY).contains("inf"));
        assert_eq!(fmt_secs(0.0000005), "0.5us");
        assert_eq!(fmt_secs(0.25), "250.0ms");
        assert_eq!(fmt_secs(3.2), "3.20s");
    }
}
