//! Reproduces the paper's Figure 6 (real-graph sizes and running time) and
//! Figure 7 (median relative error on those graphs), using synthetic
//! stand-ins for the original datasets (see DESIGN.md, substitutions).

use rmdp_experiments::runners::fig6_7;
use rmdp_experiments::CliOptions;

fn main() {
    let options = CliOptions::from_env();
    eprintln!(
        "fig6/7: scale={}, seed={}, trials={}",
        options.scale.name(),
        options.seed,
        options.trials()
    );
    let results = fig6_7::run(&options);
    let note = format!("synthetic stand-ins, scale = {}", options.scale.name());
    let sizes = fig6_7::size_table(&results, &note);
    let errors = fig6_7::error_table(&results);
    sizes.print();
    println!();
    errors.print();
    println!();
    println!("{}", fig6_7::paper_expectation());
    if let Some(path) = &options.csv {
        if let Err(e) = errors.write_csv(path) {
            eprintln!("failed to write CSV to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
