//! Perf smoke test for the two sequence-layer optimisations.
//!
//! **LP chains** (`BENCH_lp.json`): times a full `H`/`G` precompute twice
//! per fig-4 workload (triangle and 2-star counting under node privacy) —
//! entry-by-entry cold solves (`chain_run_len = 1`) and the default
//! warm-started chains — with wall times and pivot counts. The same file
//! also carries the **basis scaling** section: synthetic 2-star counting
//! `H`-models from 4.5k up to 101.5k hinge rows, solved cold and
//! RHS-stepped warm on the sparse-LU backend (wall time, pivots, peak
//! factor nonzeros, estimated basis memory), with the dense-`B⁻¹` oracle
//! timed at the 4.5k point only (its `rows²` inverse is already 160 MB
//! there). Gated on the sparse backend strictly beating dense wall-clock
//! at 4.5k rows, agreeing with it on the objective, and completing the
//! 100k-row instance.
//!
//! **Sequence cache** (`BENCH_cache.json`): the repeated-workload bench.
//! One cold release pays the full sequence precompute and populates the
//! [`rmdp_core::SequenceCache`]; every repeat is a cache hit that skips the
//! precompute entirely. The bench records cold vs warm-hit wall time (the
//! acceptance gate requires ≥ 10× on the fig-4 triangle workload),
//! verifies bit-identity of the released values against a cache-less run
//! under the same seeds, and measures the hit rate of a SQL session
//! replaying a repeated query mix with permuted aliases.
//!
//! **Grouped fan-out** (`BENCH_groupby.json`): the `GROUP BY` report bench.
//! One k-group report is released serially and on the worker pool (the
//! per-group sequence computations are the unit of fan-out) and must be
//! bit-identical; repeated reports through a shared [`SequenceCache`] must
//! hit on every group after the first report.
//!
//! **Telemetry overhead** (`BENCH_observe.json`): the instrumentation
//! bench. The same uncached prepare-and-release workload runs twice under
//! identical seeds — once with a [`rmdp_observe::NoopRecorder`] (whose
//! empty inline hooks compile away) and once with a live
//! [`rmdp_observe::SpanRecorder`] — and the releases must be bit-identical
//! (telemetry may never perturb a release) with the instrumented pass
//! within 5% (plus a small absolute slack) of the no-op pass.
//!
//! **Multi-tenant server** (`BENCH_server.json`): the end-to-end service
//! bench. A [`rmdp_server::DpServer`] over one shared snapshot and
//! cross-tenant sequence cache serves ≥ 8 concurrent TCP clients — one
//! tenant each — replaying a mixed workload (repeated scalars, a grouped
//! report, an `EXPLAIN ANALYZE`) through the line protocol. Reports
//! client-side p50/p99 latency and queries/sec plus the server's own
//! latency histogram quantiles, and gates on the privacy invariants: every
//! tenant's debited ε equals its admitted releases exactly, and a
//! serialized cache-free replay reproduces the releases each client parsed
//! off the wire bit-identically.
//!
//! **Incremental ingestion** (`BENCH_incremental.json`): the delta-scoped
//! invalidation bench. The fig-4 2-star workload is projected onto an
//! owner-annotated SQL table and released once cold; each round then
//! appends rows for existing owners, sweeps the stale cache entry (which
//! parks its refresh seed), and re-releases twice under the same seed —
//! once through the warm-refresh path, once rebuilding the cache entry
//! cold (the identical eager computation, minus the parked seed). Gated on
//! the warm path strictly beating the cold rebuild in both wall-clock
//! (minimum over replayed timing passes) and pivots while releasing
//! bit-identically. A second
//! section runs a [`rmdp_server::DpServer`] mixed query+ingest loop over
//! two tables and gates on the untouched table's entries surviving every
//! ingest and on version-matched replay reproducing the interleaved run
//! bit-identically.
//!
//! All bench sections share **one warmed-up setup**: the fig-4 sensitive
//! relations are built once up front and the setup wall time is reported
//! separately (in `BENCH_observe.json`), so section timings measure the
//! mechanism, not repeated graph construction.
//!
//! CI uploads all six files as artifacts on every run, so the trajectory
//! of the sequence hot path is tracked over time. Pivot counts, hit rates
//! and bit-identity are deterministic; wall times are indicative (shared
//! runners).
//!
//! Usage: `perf_smoke [lp.json] [cache.json] [groupby.json] [observe.json]
//! [server.json] [incremental.json]` (defaults `BENCH_lp.json`,
//! `BENCH_cache.json`, `BENCH_groupby.json`, `BENCH_observe.json`,
//! `BENCH_server.json`, `BENCH_incremental.json`).

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rmdp_core::efficient::EfficientSequences;
use rmdp_core::params::MechanismParams;
use rmdp_core::subgraph::{PrivacyUnit, SubgraphCounter};
use rmdp_core::{
    CachedSequences, FrozenSequences, MechanismSequences, Parallelism, RecursiveMechanism,
    SensitiveKRelation, SequenceCache,
};
use rmdp_graph::{generators, Pattern};
use rmdp_krelation::annotate::AnnotatedDatabase;
use rmdp_krelation::fingerprint::Fingerprint;
use rmdp_krelation::tuple::{Tuple, Value};
use rmdp_krelation::{Expr, KRelation};
use rmdp_lp::{Model, Sense, SimplexOptions, SolverBackend};
use rmdp_noise::PrivacyBudget;
use rmdp_observe::{MonotonicClock, NoopRecorder, SpanRecorder, Stage, Stopwatch};
use rmdp_server::{serve, DpClient, DpServer, ServerConfig, WireResponse};
use rmdp_sql::{CatalogSnapshot, QueryOutput, SqlSession};
use std::sync::Arc;

struct WorkloadResult {
    name: String,
    participants: usize,
    lp_solves: usize,
    cold_wall_ms: f64,
    cold_pivots: usize,
    warm_wall_ms: f64,
    warm_pivots: usize,
    warm_start_hits: usize,
}

fn fig4_relation(pattern: &Pattern) -> SensitiveKRelation {
    // Small enough to keep the CI smoke under a minute — the 2-star family
    // on this graph is still a ~350-row LP per entry — while large enough
    // that warm-vs-cold pivot counts are meaningful.
    let mut rng = StdRng::seed_from_u64(77);
    let graph = generators::gnp_average_degree(24, 6.0, &mut rng);
    SubgraphCounter::new(
        pattern.clone(),
        PrivacyUnit::Node,
        MechanismParams::paper_node_privacy(0.5),
    )
    .build_sensitive_relation(&graph)
}

/// The shared, warmed-up setup every bench section reuses: the fig-4
/// sensitive relations are materialised once (graph generation + subgraph
/// counting + weight construction) and the cost is reported separately, so
/// no section's wall time silently includes setup.
struct BenchEnv {
    /// `(workload name, sensitive relation)`, one per fig-4 pattern.
    workloads: Vec<(String, SensitiveKRelation)>,
    setup_wall_ms: f64,
}

fn build_env() -> BenchEnv {
    let watch = Stopwatch::start();
    let workloads = [Pattern::triangle(), Pattern::k_star(2)]
        .into_iter()
        .map(|p| (p.name().to_string(), fig4_relation(&p)))
        .collect();
    BenchEnv {
        workloads,
        setup_wall_ms: watch.elapsed_seconds() * 1e3,
    }
}

fn precompute_timed(seq: &mut EfficientSequences) -> f64 {
    let watch = Stopwatch::start();
    seq.precompute(Parallelism::Serial)
        .expect("fig-4 entry LPs are feasible and bounded");
    watch.elapsed_seconds() * 1e3
}

fn run_workload(name: &str, relation: &SensitiveKRelation) -> WorkloadResult {
    let participants = relation.num_participants();

    let mut cold = EfficientSequences::new(relation.clone()).with_chain_run_len(1);
    let cold_wall_ms = precompute_timed(&mut cold);

    let mut warm = EfficientSequences::new(relation.clone());
    let warm_wall_ms = precompute_timed(&mut warm);

    let (c, w) = (cold.stats(), warm.stats());
    assert_eq!(c.h_solves + c.g_solves, w.h_solves + w.g_solves);
    WorkloadResult {
        name: name.to_string(),
        participants,
        lp_solves: w.h_solves + w.g_solves,
        cold_wall_ms,
        cold_pivots: c.total_pivots,
        warm_wall_ms,
        warm_pivots: w.total_pivots,
        warm_start_hits: w.warm_start_hits,
    }
}

/// One instance size of the basis scaling bench.
struct ScalingResult {
    centers: usize,
    leaves_per: usize,
    /// Rows of the standardised system (hinge rows + the mass row).
    rows: usize,
    /// Columns of the standardised system (structural + slacks).
    cols: usize,
    objective: f64,
    sparse_wall_ms: f64,
    sparse_pivots: usize,
    /// Peak stored nonzeros of the LU factors plus eta file.
    peak_factor_nnz: usize,
    /// Estimated peak basis memory of the sparse backend
    /// (`peak_factor_nnz × 16` bytes: one f64 + one index per entry).
    sparse_mem_bytes: usize,
    /// Warm re-solve after stepping the mass row RHS by one.
    warm_wall_ms: f64,
    warm_pivots: usize,
    /// The dense-`B⁻¹` oracle on the same instance; only run at the
    /// smallest size (its inverse alone is `rows² × 8` bytes).
    dense: Option<DensePoint>,
}

/// The dense-backend comparison point of one scaling instance.
struct DensePoint {
    wall_ms: f64,
    pivots: usize,
    /// `rows² × 8` bytes: the explicit inverse the backend maintains.
    mem_bytes: usize,
    objective: f64,
}

/// A synthetic 2-star counting `H`-model with the exact shape
/// [`rmdp_core::efficient`] builds for fig-4, scaled up: unit variables
/// `f_p ∈ [0,1]` per participant, the mass row `Σ f_p = mass` first (row 0,
/// so a chain steps the index with one `set_rhs`), then one hinge row
/// `f_c + f_l + f_l' − v ≤ 2` per 2-star `centers × C(leaves_per, 2)`.
/// `(100, 10)` gives 4 500 hinge rows, `(250, 29)` gives 101 500.
fn two_star_h_model(centers: usize, leaves_per: usize, mass: f64) -> Model {
    let mut model = Model::new(Sense::Minimize);
    let mut participants = Vec::with_capacity(centers * (1 + leaves_per));
    let mut stars = Vec::with_capacity(centers);
    for _ in 0..centers {
        let c = model.add_unit_var(0.0);
        participants.push(c);
        let leaves: Vec<_> = (0..leaves_per)
            .map(|_| {
                let l = model.add_unit_var(0.0);
                participants.push(l);
                l
            })
            .collect();
        stars.push((c, leaves));
    }
    model.add_eq(participants.iter().map(|&v| (v, 1.0)), mass);
    for (c, leaves) in &stars {
        for i in 0..leaves.len() {
            for j in (i + 1)..leaves.len() {
                let v = model.add_nonneg_var(1.0);
                model.add_le(
                    [(*c, 1.0), (leaves[i], 1.0), (leaves[j], 1.0), (v, -1.0)],
                    2.0,
                );
            }
        }
    }
    model
}

/// Runs one scaling instance: a cold sparse-LU solve, a warm re-solve after
/// stepping the mass row (the chain access pattern), and — when
/// `with_dense` — the dense-`B⁻¹` oracle on the same cold start.
fn run_scaling_point(centers: usize, leaves_per: usize, with_dense: bool) -> ScalingResult {
    let mass = centers as f64;
    let model = two_star_h_model(centers, leaves_per, mass);
    let sparse_opts = SimplexOptions::default();
    debug_assert_eq!(sparse_opts.backend, SolverBackend::SparseLu);

    let prepared = model.prepare().expect("scaling model is well-formed");

    let watch = Stopwatch::start();
    let cold = prepared
        .solve(&sparse_opts)
        .expect("scaling model is feasible and bounded");
    let sparse_wall_ms = watch.elapsed_seconds() * 1e3;
    let stats = cold.solution.stats;

    // One chain step: bump the mass and re-enter from the optimal basis,
    // which also carries the LU factors (the O(1) Arc hand-off).
    let mut stepped = prepared.clone();
    stepped.set_rhs(0, mass + 1.0);
    let watch = Stopwatch::start();
    let warm = stepped
        .solve_warm(&cold.basis, &sparse_opts)
        .expect("stepped scaling model stays feasible");
    let warm_wall_ms = watch.elapsed_seconds() * 1e3;
    let wstats = warm.solution.stats;
    assert!(
        wstats.warm_started,
        "the stepped scaling solve must re-enter warm"
    );

    let dense = with_dense.then(|| {
        let dense_opts = SimplexOptions {
            backend: SolverBackend::Revised,
            ..SimplexOptions::default()
        };
        let watch = Stopwatch::start();
        let sol = prepared
            .solve(&dense_opts)
            .expect("the dense oracle solves the same instance");
        let wall_ms = watch.elapsed_seconds() * 1e3;
        let dstats = sol.solution.stats;
        DensePoint {
            wall_ms,
            pivots: dstats.phase1_iterations + dstats.phase2_iterations,
            mem_bytes: dstats.rows * dstats.rows * 8,
            objective: sol.solution.objective,
        }
    });

    ScalingResult {
        centers,
        leaves_per,
        rows: stats.rows,
        cols: stats.cols,
        objective: cold.solution.objective,
        sparse_wall_ms,
        sparse_pivots: stats.phase1_iterations + stats.phase2_iterations,
        peak_factor_nnz: stats.fill_in_nnz,
        sparse_mem_bytes: stats.fill_in_nnz * 16,
        warm_wall_ms,
        warm_pivots: wstats.phase1_iterations + wstats.phase2_iterations,
        dense,
    }
}

/// The repeated-workload cache bench on one core-level workload.
struct CacheBenchResult {
    name: String,
    participants: usize,
    /// Wall time of the cold (miss) release: full sequence precompute,
    /// cache population and release.
    cold_wall_ms: f64,
    /// Mean wall time of a warm-hit release over `warm_releases` repeats.
    warm_hit_wall_ms: f64,
    warm_releases: usize,
    speedup: f64,
    /// Whether the cached releases were bit-identical to a cache-less run
    /// under the same per-query seeds.
    bit_identical: bool,
}

/// One release the way `SqlSession` does it: a fresh per-query RNG seeded
/// from the workload stream, releasing through the given sequences.
fn release_once<S: MechanismSequences>(
    sequences: S,
    params: MechanismParams,
    seed: u64,
) -> rmdp_core::Release {
    let mut mech =
        RecursiveMechanism::new(sequences, params).expect("fig-4 sequences are feasible");
    mech.release(&mut StdRng::seed_from_u64(seed))
        .expect("fig-4 release succeeds")
}

fn run_cache_workload(
    name: &str,
    relation: &SensitiveKRelation,
    repeats: usize,
) -> CacheBenchResult {
    let participants = relation.num_participants();
    let params = MechanismParams::paper_node_privacy(0.5);
    let cache = SequenceCache::new(8);
    let key = Fingerprint(0xF16_4BE ^ participants as u128);

    // Per-query seeds, drawn once and replayed for cached and uncached runs.
    let mut seed_stream = StdRng::seed_from_u64(4242);
    let seeds: Vec<u64> = (0..=repeats).map(|_| seed_stream.next_u64()).collect();

    // Cold: the miss pays the whole sequence precompute and populates the
    // cache (exactly what a SqlSession miss does).
    let cold_watch = Stopwatch::start();
    let frozen = cache
        .get_or_try_insert_with(key, || {
            FrozenSequences::compute(
                EfficientSequences::new(relation.clone()),
                Parallelism::Serial,
            )
        })
        .expect("fig-4 precompute succeeds");
    let cold_release = release_once(CachedSequences(frozen), params, seeds[0]);
    let cold_wall_ms = cold_watch.elapsed_seconds() * 1e3;

    // Warm: every repeat is a hit — no plan execution, no LPs, just the
    // Δ-ladder walk over the frozen table and two Laplace draws.
    let warm_watch = Stopwatch::start();
    let mut warm_releases = Vec::with_capacity(repeats);
    for &seed in &seeds[1..] {
        let frozen = cache.get(key).expect("populated above");
        warm_releases.push(release_once(CachedSequences(frozen), params, seed));
    }
    let warm_hit_wall_ms = warm_watch.elapsed_seconds() * 1e3 / repeats.max(1) as f64;

    // Bit-identity against the cache-less path under the same seeds. Each
    // comparison replays a full cold release, so only the populating release
    // and the first few hits are verified — enough to catch any divergence
    // (the remaining hits read the same frozen table) while keeping the
    // smoke fast.
    let verified = 3.min(warm_releases.len());
    let mut bit_identical = true;
    for (release, &seed) in std::iter::once(&cold_release)
        .chain(warm_releases.iter().take(verified))
        .zip(&seeds)
    {
        let cold = release_once(EfficientSequences::new(relation.clone()), params, seed);
        bit_identical &= cold.noisy_answer.to_bits() == release.noisy_answer.to_bits()
            && cold.delta_hat.to_bits() == release.delta_hat.to_bits()
            && cold.x.to_bits() == release.x.to_bits();
    }

    CacheBenchResult {
        name: name.to_string(),
        participants,
        cold_wall_ms,
        warm_hit_wall_ms,
        warm_releases: repeats,
        speedup: cold_wall_ms / warm_hit_wall_ms.max(1e-9),
        bit_identical,
    }
}

/// The SQL-session view of the same story: a repeated query mix (three
/// shapes, each rendered with varying aliases) replayed against one shared
/// cache. Returns `(queries, hits, misses, warm_wall_ms_per_query)`.
fn run_sql_repeated_workload() -> (usize, u64, u64, f64) {
    let mut db = AnnotatedDatabase::new();
    let mut visits = KRelation::new(["person", "place"]);
    for (person, place) in [
        ("ada", "museum"),
        ("bo", "museum"),
        ("bo", "cafe"),
        ("cy", "cafe"),
        ("dee", "museum"),
        ("eve", "park"),
    ] {
        let p = db.universe_mut().intern(person);
        visits.insert(
            Tuple::new([("person", Value::str(person)), ("place", Value::str(place))]),
            Expr::Var(p),
        );
    }
    db.insert_table("visits", visits);

    let cache = SequenceCache::shared(16);
    let mut session = SqlSession::new(db, MechanismParams::paper_edge_privacy(1.0))
        .with_sequence_cache(Arc::clone(&cache));
    // Three shapes; alias spellings rotate so the hits come from canonical
    // fingerprints, not string equality.
    let rounds = 12;
    let mut executed = 0usize;
    let watch = Stopwatch::start();
    for round in 0..rounds {
        let (a, b) = if round % 2 == 0 {
            ("v1", "v2")
        } else {
            ("x", "y")
        };
        let batch = [
            format!("SELECT COUNT(*) FROM visits {a} WHERE {a}.place = 'museum'"),
            format!("SELECT COUNT(*) FROM visits {a}"),
            format!(
                "SELECT COUNT(*) FROM visits {a} JOIN visits {b} ON {a}.place = {b}.place \
                 WHERE {a}.person < {b}.person"
            ),
        ];
        session.query_batch(&batch).expect("workload releases");
        executed += batch.len();
    }
    let wall_ms = watch.elapsed_seconds() * 1e3 / executed as f64;
    let stats = cache.stats();
    (executed, stats.hits, stats.misses, wall_ms)
}

/// The grouped-report bench: k-group fan-out serial vs pooled, and the
/// cache hit-rate of repeated reports.
struct GroupByBenchResult {
    /// Declared domain size (= groups per report).
    k: usize,
    /// Wall time of one cold report, all groups computed serially.
    serial_wall_ms: f64,
    /// Wall time of one cold report fanned across the worker pool.
    pooled_wall_ms: f64,
    /// Whether serial and pooled reports were bit-identical per key.
    bit_identical: bool,
    /// Reports replayed against one shared cache (first one cold).
    reports: usize,
    /// Cache hit rate across the replay: (reports−1)/reports of the
    /// per-group computations are hits.
    hit_rate: f64,
    /// Mean wall time of a fully cached report.
    warm_report_wall_ms: f64,
}

fn run_groupby_workload() -> GroupByBenchResult {
    let places = [
        "museum", "cafe", "park", "stadium", "library", "zoo", "arena", "pier",
    ];
    let mut db = AnnotatedDatabase::new();
    let mut visits = KRelation::new(["person", "place"]);
    let mut rng = StdRng::seed_from_u64(99);
    for i in 0..24 {
        let person = format!("p{i}");
        let p = db.intern(&person);
        // Each person visits a few pseudo-random venues.
        for _ in 0..1 + (rng.next_u64() % 3) {
            let place = places[(rng.next_u64() % places.len() as u64) as usize];
            visits.insert(
                Tuple::new([
                    ("person", Value::str(&person)),
                    ("place", Value::str(place)),
                ]),
                Expr::Var(p),
            );
        }
    }
    db.insert_table("visits", visits);
    db.declare_public_domain("visits", "place", places.map(Value::str));
    let params = MechanismParams::paper_edge_privacy(1.0);
    let sql = "SELECT place, COUNT(*) FROM visits GROUP BY place";

    // Serial vs pooled cold reports over the *same database value* (the
    // session clones share the instance only within one session, so each
    // gets its own db — determinism must come from the seed alone).
    let watch = Stopwatch::start();
    let serial = SqlSession::with_seed(db.clone(), params, 7)
        .query_grouped(sql)
        .expect("serial grouped release");
    let serial_wall_ms = watch.elapsed_seconds() * 1e3;

    let watch = Stopwatch::start();
    let pooled = SqlSession::with_seed(
        db.clone(),
        params.with_parallelism(Parallelism::Threads(4)),
        7,
    )
    .query_grouped(sql)
    .expect("pooled grouped release");
    let pooled_wall_ms = watch.elapsed_seconds() * 1e3;

    let bit_identical = serial.len() == pooled.len()
        && serial.groups.iter().zip(&pooled.groups).all(|(a, b)| {
            a.key == b.key
                && a.release.noisy_answer.to_bits() == b.release.noisy_answer.to_bits()
                && a.release.delta_hat.to_bits() == b.release.delta_hat.to_bits()
                && a.release.x.to_bits() == b.release.x.to_bits()
        });

    // Repeated reports through one shared cache: the first pays k misses,
    // every later report is k hits.
    let cache = SequenceCache::shared(16);
    let mut session = SqlSession::with_seed(db, params, 7).with_sequence_cache(Arc::clone(&cache));
    let reports = 8;
    session.query_grouped(sql).expect("cold cached report");
    let warm_watch = Stopwatch::start();
    for _ in 1..reports {
        session.query_grouped(sql).expect("warm cached report");
    }
    let warm_report_wall_ms = warm_watch.elapsed_seconds() * 1e3 / (reports - 1).max(1) as f64;
    let stats = cache.stats();
    let hit_rate = stats.hits as f64 / (stats.hits + stats.misses).max(1) as f64;

    GroupByBenchResult {
        k: places.len(),
        serial_wall_ms,
        pooled_wall_ms,
        bit_identical,
        reports,
        hit_rate,
        warm_report_wall_ms,
    }
}

/// The instrumentation-overhead bench: the uncached prepare-and-release
/// workload under a no-op recorder vs a live span recorder, same seeds.
struct ObserveBenchResult {
    iterations: usize,
    noop_wall_ms: f64,
    instrumented_wall_ms: f64,
    /// `(instrumented − noop) / noop`; may be slightly negative on noisy
    /// runners.
    overhead_fraction: f64,
    /// Whether the instrumented releases were bit-identical to the no-op
    /// ones — the telemetry hard invariant.
    bit_identical: bool,
    /// Whether every instrumented run produced a monotone recorder that
    /// actually entered the solve and noise stages.
    traces_populated: bool,
}

fn run_observe_workload(relation: &SensitiveKRelation) -> ObserveBenchResult {
    let params = MechanismParams::paper_node_privacy(0.5);
    let iterations = 4;
    let mut seed_stream = StdRng::seed_from_u64(2025);
    let seeds: Vec<u64> = (0..iterations).map(|_| seed_stream.next_u64()).collect();

    // Each iteration pays the full uncached pipeline (sequence LPs + ladder
    // walk + noise), which is exactly the region the recorder straddles —
    // so the measured overhead fraction reflects a real query, not a
    // microbenchmark of the hooks. Two alternating rounds, min per mode,
    // to shave scheduler noise on shared runners.
    let run_noop = || -> (Vec<rmdp_core::Release>, f64) {
        let watch = Stopwatch::start();
        let releases = seeds
            .iter()
            .map(|&seed| {
                let mut mech =
                    RecursiveMechanism::new(EfficientSequences::new(relation.clone()), params)
                        .expect("fig-4 sequences are feasible");
                mech.release_recorded(&mut StdRng::seed_from_u64(seed), &mut NoopRecorder)
                    .expect("fig-4 release succeeds")
            })
            .collect();
        (releases, watch.elapsed_seconds() * 1e3)
    };
    let run_instrumented = || -> (Vec<rmdp_core::Release>, f64, bool) {
        let mut populated = true;
        let watch = Stopwatch::start();
        let releases = seeds
            .iter()
            .map(|&seed| {
                let mut mech =
                    RecursiveMechanism::new(EfficientSequences::new(relation.clone()), params)
                        .expect("fig-4 sequences are feasible");
                let mut recorder = SpanRecorder::new(MonotonicClock::new());
                let release = mech
                    .release_recorded(&mut StdRng::seed_from_u64(seed), &mut recorder)
                    .expect("fig-4 release succeeds");
                populated &= recorder.stage_entries(Stage::SequenceSolve) > 0
                    && recorder.stage_entries(Stage::NoiseSample) > 0;
                release
            })
            .collect();
        (releases, watch.elapsed_seconds() * 1e3, populated)
    };

    let mut noop_wall_ms = f64::INFINITY;
    let mut instrumented_wall_ms = f64::INFINITY;
    let mut bit_identical = true;
    let mut traces_populated = true;
    for _ in 0..2 {
        let (noop_releases, noop_ms) = run_noop();
        let (instrumented_releases, instrumented_ms, populated) = run_instrumented();
        noop_wall_ms = noop_wall_ms.min(noop_ms);
        instrumented_wall_ms = instrumented_wall_ms.min(instrumented_ms);
        traces_populated &= populated;
        bit_identical &= noop_releases.len() == instrumented_releases.len()
            && noop_releases
                .iter()
                .zip(&instrumented_releases)
                .all(|(a, b)| {
                    a.noisy_answer.to_bits() == b.noisy_answer.to_bits()
                        && a.delta_hat.to_bits() == b.delta_hat.to_bits()
                        && a.x.to_bits() == b.x.to_bits()
                });
    }

    ObserveBenchResult {
        iterations,
        noop_wall_ms,
        instrumented_wall_ms,
        overhead_fraction: (instrumented_wall_ms - noop_wall_ms) / noop_wall_ms.max(1e-9),
        bit_identical,
        traces_populated,
    }
}

/// The multi-tenant server bench: concurrent TCP clients over one shared
/// snapshot + cache, with the privacy invariants checked afterwards.
struct ServerBenchResult {
    clients: usize,
    /// Successful releases across all clients.
    queries: usize,
    /// Refused/shed requests (expected 0 under this sizing; gated).
    refused: usize,
    /// Client-observed request latencies, p50/p99 (protocol round trip).
    p50_ms: f64,
    p99_ms: f64,
    /// Server-side latency histogram quantiles (`server.latency_ms`).
    server_p50_ms: f64,
    server_p99_ms: f64,
    /// Successful queries per second of bench wall time.
    qps: f64,
    /// Shared-cache totals across the run.
    cache_hits: u64,
    cache_misses: u64,
    /// Whether every tenant's spent ε equals its admitted count exactly
    /// (1 ε per workload query) and `spent + remaining` covers the grant.
    budget_conserved: bool,
    /// Whether a serialized cache-free replay reproduced every noisy
    /// answer each client parsed off the wire, bit for bit.
    bit_identical: bool,
}

fn run_server_workload() -> ServerBenchResult {
    let mut db = AnnotatedDatabase::new();
    let mut visits = KRelation::new(["person", "place"]);
    for (person, place) in [
        ("ada", "museum"),
        ("bo", "museum"),
        ("bo", "cafe"),
        ("cy", "cafe"),
        ("dee", "museum"),
        ("eve", "park"),
    ] {
        let p = db.intern(person);
        visits.insert(
            Tuple::new([("person", Value::str(person)), ("place", Value::str(place))]),
            Expr::Var(p),
        );
    }
    db.insert_table("visits", visits);
    db.declare_public_domain(
        "visits",
        "place",
        [Value::str("museum"), Value::str("cafe"), Value::str("park")],
    );
    let snapshot = CatalogSnapshot::shared(db, MechanismParams::paper_edge_privacy(1.0));

    let clients = 8;
    let rounds = 4;
    // The mixed workload every client replays each round: a repeated
    // scalar (cache hits after round one), a filtered scalar, a grouped
    // report and a traced release. Each costs exactly 1 ε.
    let workload = [
        "SELECT COUNT(*) FROM visits",
        "SELECT COUNT(*) FROM visits WHERE place = 'museum'",
        "SELECT place, COUNT(*) FROM visits GROUP BY place",
        "EXPLAIN ANALYZE SELECT COUNT(*) FROM visits",
    ];
    let grant = (rounds * workload.len()) as f64 + 2.0;

    let server = Arc::new(DpServer::new(snapshot, ServerConfig::default()));
    let names: Vec<String> = (0..clients).map(|i| format!("tenant{i}")).collect();
    for name in &names {
        server.register_tenant(
            name,
            PrivacyBudget {
                epsilon: grant,
                delta: 0.0,
            },
        );
    }
    let mut handle = serve(Arc::clone(&server), "127.0.0.1:0").expect("bind ephemeral port");
    let addr = handle.addr();

    // One thread per client/tenant; collect per-request latency and every
    // noisy answer in issue order (= the tenant's admission order).
    let bench_watch = Stopwatch::start();
    let per_client: Vec<(Vec<f64>, Vec<Vec<f64>>, usize)> = std::thread::scope(|s| {
        let handles: Vec<_> = names
            .iter()
            .map(|name| {
                s.spawn(move || {
                    let mut client = DpClient::connect(addr).expect("connect");
                    let mut latencies = Vec::new();
                    let mut answers: Vec<Vec<f64>> = Vec::new();
                    let mut refused = 0usize;
                    for _ in 0..rounds {
                        for sql in workload {
                            let watch = Stopwatch::start();
                            let response = client.query(name, sql).expect("transport");
                            latencies.push(watch.elapsed_seconds() * 1e3);
                            match flatten_noisy(&response) {
                                Some(noisy) => answers.push(noisy),
                                None => refused += 1,
                            }
                        }
                    }
                    (latencies, answers, refused)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let bench_wall_s = bench_watch.elapsed_seconds();

    let queries: usize = per_client.iter().map(|(_, a, _)| a.len()).sum();
    let refused: usize = per_client.iter().map(|(_, _, r)| r).sum();
    let mut latencies: Vec<f64> = per_client
        .iter()
        .flat_map(|(l, _, _)| l.iter().copied())
        .collect();
    latencies.sort_by(f64::total_cmp);
    let quantile = |q: f64| -> f64 {
        let rank = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1]
    };

    // Privacy invariants, checked after the fact on the server's state.
    let mut budget_conserved = true;
    let mut bit_identical = true;
    for (name, (_, answers, _)) in names.iter().zip(&per_client) {
        let spent = server.spent_budget(name).expect("registered").epsilon;
        let remaining = server.remaining_budget(name).expect("registered").epsilon;
        budget_conserved &= spent == answers.len() as f64 && spent + remaining == grant;

        let replayed = server.replay(name).expect("registered");
        bit_identical &= replayed.len() == answers.len();
        for (wire, replay) in answers.iter().zip(&replayed) {
            let cold = flatten_output(replay.as_ref().expect("replay succeeds"));
            bit_identical &= wire.len() == cold.len()
                && wire
                    .iter()
                    .zip(&cold)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
        }
    }

    let metrics = server.metrics().snapshot();
    let server_quantile = |q: f64| -> f64 {
        metrics
            .histogram("server.latency_ms")
            .and_then(|h| h.quantile(q))
            .unwrap_or(f64::NAN)
    };
    let cache = server.cache_stats();
    let result = ServerBenchResult {
        clients,
        queries,
        refused,
        p50_ms: quantile(0.5),
        p99_ms: quantile(0.99),
        server_p50_ms: server_quantile(0.5),
        server_p99_ms: server_quantile(0.99),
        qps: queries as f64 / bench_wall_s.max(1e-9),
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        budget_conserved,
        bit_identical,
    };
    handle.stop();
    result
}

/// The incremental-ingestion bench: warm re-release from parked refresh
/// seeds vs a full cold rebuild after each delta, on the fig-4 2-star
/// workload projected onto an owner-annotated SQL table.
struct IncrementalBenchResult {
    participants: usize,
    /// Rows of the initial load (one per 2-star term).
    initial_rows: usize,
    /// Delta rounds applied (each: ingest → sweep → warm + cold release).
    rounds: usize,
    /// Total wall time of the warm-refresh releases across all rounds
    /// (minimum over the timing passes).
    warm_wall_ms: f64,
    /// Total wall time of the cold cache rebuilds across all rounds
    /// (minimum over the timing passes).
    cold_wall_ms: f64,
    /// Total simplex pivots each path spent.
    warm_pivots: u64,
    cold_pivots: u64,
    /// Whether every warm release matched its cold twin bit for bit.
    bit_identical: bool,
}

/// Projects a 2-star relation onto an owner-annotated table: each 2-star
/// term becomes one row owned by its lowest-index node, so
/// `SELECT COUNT(*)` carries every term as a bare `Var` with weight 1 —
/// the warm-exact class whose refresh re-entry is bit-identical to a cold
/// recompute. Deltas then append rows for *existing* owners (intern-only:
/// only the table epoch moves), which is exactly the weight-change shape
/// [`rmdp_core::RefreshTier::WarmChain`] covers.
///
/// The graph is the fig-4 family (G(n,p) at average degree 6, 2-star
/// pattern) scaled up to 128 nodes: at the 24-node smoke size the whole
/// release is a few milliseconds and a wall-clock gate would measure
/// scheduler noise, not the refresh path.
fn run_incremental_workload() -> IncrementalBenchResult {
    use rmdp_krelation::annotate::AnnotationRule;

    let mut rng = StdRng::seed_from_u64(77);
    let graph = generators::gnp_average_degree(128, 6.0, &mut rng);
    let two_star = SubgraphCounter::new(
        Pattern::k_star(2),
        PrivacyUnit::Node,
        MechanismParams::paper_node_privacy(0.5),
    )
    .build_sensitive_relation(&graph);

    let owners: Vec<String> = two_star
        .terms()
        .iter()
        .map(|(expr, _)| {
            let owner = expr
                .variables()
                .into_iter()
                .map(|p| p.index())
                .min()
                .expect("2-star terms name their nodes");
            format!("n{owner}")
        })
        .collect();

    let mut db = AnnotatedDatabase::new();
    db.insert_table("stars", KRelation::new(["owner", "star"]));
    db.declare_annotation_rule("stars", AnnotationRule::OwnerColumn("owner".into()));
    db.apply_delta(
        "stars",
        owners.iter().enumerate().map(|(i, owner)| {
            Tuple::new([("owner", Value::str(owner)), ("star", Value::Int(i as i64))])
        }),
    )
    .expect("initial load through the delta path");
    let base = CatalogSnapshot::shared(db, MechanismParams::paper_edge_privacy(1.0));
    let participants = base.database().participants_in_use().len();
    let initial_rows = owners.len();

    const SQL: &str = "SELECT COUNT(*) FROM stars";
    let rounds = 5usize;
    let rows_per_round = 8usize;
    // The delta schedule is deterministic, so the whole run can be replayed
    // for timing: each pass re-primes a fresh cache, replays the same deltas
    // and re-measures both paths; the gate compares per-path minima so a
    // single descheduled release cannot decide it. Pivot counts and
    // bit-identity are pass-invariant and taken from the first pass.
    let passes = 3usize;
    let mut warm_wall_ms = f64::INFINITY;
    let mut cold_wall_ms = f64::INFINITY;
    let mut warm_pivots = 0u64;
    let mut cold_pivots = 0u64;
    let mut bit_identical = true;
    for pass in 0..passes {
        let cache = Arc::new(SequenceCache::new(16));
        let mut prime =
            SqlSession::over(Arc::clone(&base), 11).with_sequence_cache(Arc::clone(&cache));
        prime.query_scalar(SQL).expect("priming release succeeds");

        let mut snapshot = Arc::clone(&base);
        let mut next_star = initial_rows as i64;
        let mut pass_warm_ms = 0.0;
        let mut pass_cold_ms = 0.0;
        for round in 0..rounds {
            let rows: Vec<Tuple> = (0..rows_per_round)
                .map(|k| {
                    let owner = &owners[(round * rows_per_round + k) % owners.len()];
                    let star = next_star + k as i64;
                    Tuple::new([("owner", Value::str(owner)), ("star", Value::Int(star))])
                })
                .collect();
            next_star += rows_per_round as i64;
            snapshot = snapshot
                .with_delta("stars", rows)
                .expect("delta over existing owners");
            cache.purge_stale(&snapshot.database().current_epoch_stamps());

            // Cold rebuild: the same eager full-table computation a cache
            // miss performs — through a fresh empty cache so the code path
            // is identical — just without the parked refresh seed. Timed
            // first each round so measurement order can only penalise the
            // warm path, never flatter it.
            let seed = 4242 + round as u64;
            let cold_cache = Arc::new(SequenceCache::new(16));
            let mut cold =
                SqlSession::over(Arc::clone(&snapshot), seed).with_sequence_cache(cold_cache);
            let watch = Stopwatch::start();
            let c = cold.query_scalar(SQL).expect("cold rebuild succeeds");
            pass_cold_ms += watch.elapsed_seconds() * 1e3;

            let mut warm = SqlSession::over(Arc::clone(&snapshot), seed)
                .with_sequence_cache(Arc::clone(&cache));
            let watch = Stopwatch::start();
            let w = warm.query_scalar(SQL).expect("warm release succeeds");
            pass_warm_ms += watch.elapsed_seconds() * 1e3;

            if pass == 0 {
                warm_pivots += warm.lp_totals().total_pivots as u64;
                cold_pivots += cold.lp_totals().total_pivots as u64;
                bit_identical &= w.true_answer.to_bits() == c.true_answer.to_bits()
                    && w.noisy_answer.to_bits() == c.noisy_answer.to_bits();
            }
        }
        warm_wall_ms = warm_wall_ms.min(pass_warm_ms);
        cold_wall_ms = cold_wall_ms.min(pass_cold_ms);
    }

    IncrementalBenchResult {
        participants,
        initial_rows,
        rounds,
        warm_wall_ms,
        cold_wall_ms,
        warm_pivots,
        cold_pivots,
        bit_identical,
    }
}

/// The server-level mixed query+ingest run: interleave queries over two
/// tables with ingests into one of them, then check the delta-scoping
/// invariants on the server's own books.
struct IncrementalServerResult {
    queries: u64,
    ingests: u64,
    rows_ingested: u64,
    swept: u64,
    cache_hits: u64,
    cache_misses: u64,
    /// Whether the untouched table's entry survived every ingest (exactly
    /// one cold solve for it across the whole run).
    untouched_hits_preserved: bool,
    /// Whether replay over the version history reproduced every live
    /// release bit for bit, across the interleaved ingests.
    replay_bit_identical: bool,
}

fn run_incremental_server_workload() -> IncrementalServerResult {
    use rmdp_krelation::annotate::AnnotationRule;

    let mut db = AnnotatedDatabase::new();
    db.insert_table("visits", KRelation::new(["person", "place"]));
    db.insert_table("residents", KRelation::new(["person", "town"]));
    db.declare_annotation_rule("visits", AnnotationRule::OwnerColumn("person".into()));
    db.declare_annotation_rule("residents", AnnotationRule::OwnerColumn("person".into()));
    let people = ["ada", "bo", "cy", "dee"];
    db.apply_delta(
        "visits",
        people
            .iter()
            .map(|p| Tuple::new([("person", Value::str(p)), ("place", Value::str("museum"))])),
    )
    .expect("initial visits load");
    db.apply_delta(
        "residents",
        people.iter().map(|p| {
            Tuple::new([
                ("person", Value::str(p)),
                ("town", Value::str("springfield")),
            ])
        }),
    )
    .expect("initial residents load");
    let snapshot = CatalogSnapshot::shared(db, MechanismParams::paper_edge_privacy(1.0));

    let server = DpServer::new(snapshot, ServerConfig::default());
    let rounds = 6u64;
    server.register_tenant(
        "ingestor",
        PrivacyBudget {
            epsilon: 2.0 * rounds as f64,
            delta: 0.0,
        },
    );

    let mut live = Vec::new();
    for round in 0..rounds {
        live.push(
            server
                .query("ingestor", "SELECT COUNT(*) FROM visits")
                .expect("visits release"),
        );
        live.push(
            server
                .query("ingestor", "SELECT COUNT(*) FROM residents")
                .expect("residents release"),
        );
        // Intern-only ingest: a known person, so only the visits epoch
        // moves and the residents entry must keep hitting.
        let person = people[round as usize % people.len()];
        server
            .ingest(
                "visits",
                vec![Tuple::new([
                    ("person", Value::str(person)),
                    ("place", Value::str("cafe")),
                ])],
            )
            .expect("ingest succeeds");
    }

    // Expected cache shape: visits misses every round (each ingest sweeps
    // its entry), residents misses once and hits thereafter.
    let cache = server.cache_stats();
    let untouched_hits_preserved = cache.misses == rounds + 1 && cache.hits == rounds - 1;

    let replayed = server.replay("ingestor").expect("registered tenant");
    let mut replay_bit_identical = replayed.len() == live.len();
    for (orig, re) in live.iter().zip(&replayed) {
        let a = flatten_output(orig);
        let b = flatten_output(re.as_ref().expect("replay succeeds"));
        replay_bit_identical &=
            a.len() == b.len() && a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits());
    }

    let metrics = server.metrics().snapshot();
    IncrementalServerResult {
        queries: 2 * rounds,
        ingests: metrics.counter("server.ingests").unwrap_or(0),
        rows_ingested: metrics.counter("server.ingest.rows").unwrap_or(0),
        swept: metrics.counter("server.ingest.swept").unwrap_or(0),
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        untouched_hits_preserved,
        replay_bit_identical,
    }
}

/// The noisy answers a wire response carries, in release order (one for a
/// scalar, one per group for a grouped report; `EXPLAIN` unwraps).
fn flatten_noisy(response: &WireResponse) -> Option<Vec<f64>> {
    match response {
        WireResponse::Scalar(r) => Some(vec![r.noisy_answer]),
        WireResponse::Grouped { groups, .. } => {
            Some(groups.iter().map(|(_, r)| r.noisy_answer).collect())
        }
        WireResponse::Explained { inner, .. } => flatten_noisy(inner),
        WireResponse::Budget { .. } | WireResponse::Ingest { .. } | WireResponse::Error { .. } => {
            None
        }
    }
}

/// The same flattening for a locally replayed [`QueryOutput`].
fn flatten_output(output: &QueryOutput) -> Vec<f64> {
    match output {
        QueryOutput::Scalar(r) => vec![r.noisy_answer],
        QueryOutput::Grouped(g) => g.groups.iter().map(|g| g.release.noisy_answer).collect(),
        QueryOutput::Explained(t) => flatten_output(&t.output),
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_lp.json".to_string());
    let cache_out_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_cache.json".to_string());
    let groupby_out_path = std::env::args()
        .nth(3)
        .unwrap_or_else(|| "BENCH_groupby.json".to_string());
    let observe_out_path = std::env::args()
        .nth(4)
        .unwrap_or_else(|| "BENCH_observe.json".to_string());
    let server_out_path = std::env::args()
        .nth(5)
        .unwrap_or_else(|| "BENCH_server.json".to_string());
    let incremental_out_path = std::env::args()
        .nth(6)
        .unwrap_or_else(|| "BENCH_incremental.json".to_string());

    let env = build_env();
    eprintln!(
        "setup: fig-4 relations built once in {:.1} ms",
        env.setup_wall_ms
    );

    let results: Vec<WorkloadResult> = env
        .workloads
        .iter()
        .map(|(name, relation)| run_workload(name, relation))
        .collect();

    let mut json = String::from("{\n  \"benchmark\": \"lp_warm_chains\",\n  \"workloads\": [\n");
    for (k, r) in results.iter().enumerate() {
        let ratio = r.warm_pivots as f64 / r.cold_pivots.max(1) as f64;
        json.push_str(&format!(
            concat!(
                "    {{\"name\": \"{}\", \"participants\": {}, \"lp_solves\": {}, ",
                "\"cold\": {{\"wall_ms\": {:.3}, \"pivots\": {}}}, ",
                "\"warm\": {{\"wall_ms\": {:.3}, \"pivots\": {}, \"warm_start_hits\": {}}}, ",
                "\"pivot_ratio\": {:.4}}}{}\n"
            ),
            r.name,
            r.participants,
            r.lp_solves,
            r.cold_wall_ms,
            r.cold_pivots,
            r.warm_wall_ms,
            r.warm_pivots,
            r.warm_start_hits,
            ratio,
            if k + 1 < results.len() { "," } else { "" },
        ));
        println!(
            "{:>10}: {} LPs over {} participants — cold {} pivots / {:.1} ms, \
             warm {} pivots / {:.1} ms ({} warm starts, pivot ratio {:.2})",
            r.name,
            r.lp_solves,
            r.participants,
            r.cold_pivots,
            r.cold_wall_ms,
            r.warm_pivots,
            r.warm_wall_ms,
            r.warm_start_hits,
            ratio,
        );
    }
    json.push_str("  ],\n");

    // --- Basis scaling: synthetic 2-star H-models, 4.5k → 101.5k rows ---
    let scaling_points = [
        (100usize, 10usize, true),
        (150, 16, false),
        (250, 29, false),
    ];
    let scaling: Vec<ScalingResult> = scaling_points
        .iter()
        .map(|&(centers, leaves_per, with_dense)| {
            run_scaling_point(centers, leaves_per, with_dense)
        })
        .collect();

    json.push_str("  \"scaling\": [\n");
    for (k, s) in scaling.iter().enumerate() {
        let dense_json = match &s.dense {
            Some(d) => format!(
                concat!(
                    "{{\"wall_ms\": {:.3}, \"pivots\": {}, ",
                    "\"mem_bytes_est\": {}, \"objective\": {:.6}}}"
                ),
                d.wall_ms, d.pivots, d.mem_bytes, d.objective,
            ),
            None => "null".to_string(),
        };
        json.push_str(&format!(
            concat!(
                "    {{\"centers\": {}, \"leaves_per\": {}, \"rows\": {}, \"cols\": {}, ",
                "\"objective\": {:.6}, ",
                "\"sparse\": {{\"wall_ms\": {:.3}, \"pivots\": {}, ",
                "\"peak_factor_nnz\": {}, \"mem_bytes_est\": {}}}, ",
                "\"warm_step\": {{\"wall_ms\": {:.3}, \"pivots\": {}}}, ",
                "\"dense\": {}}}{}\n"
            ),
            s.centers,
            s.leaves_per,
            s.rows,
            s.cols,
            s.objective,
            s.sparse_wall_ms,
            s.sparse_pivots,
            s.peak_factor_nnz,
            s.sparse_mem_bytes,
            s.warm_wall_ms,
            s.warm_pivots,
            dense_json,
            if k + 1 < scaling.len() { "," } else { "" },
        ));
        print!(
            "   scaling: {:>6} rows — sparse {:.1} ms / {} pivots \
             (peak factor nnz {}, ~{:.1} MB), warm step {:.2} ms / {} pivots",
            s.rows,
            s.sparse_wall_ms,
            s.sparse_pivots,
            s.peak_factor_nnz,
            s.sparse_mem_bytes as f64 / 1e6,
            s.warm_wall_ms,
            s.warm_pivots,
        );
        match &s.dense {
            Some(d) => println!(
                "; dense B⁻¹ {:.1} ms / {} pivots (~{:.0} MB inverse)",
                d.wall_ms,
                d.pivots,
                d.mem_bytes as f64 / 1e6,
            ),
            None => println!("; dense B⁻¹ skipped at this size"),
        }
    }
    json.push_str("  ]\n}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");

    // --- Repeated-workload sequence-cache bench → BENCH_cache.json ---
    let cache_results: Vec<CacheBenchResult> = env
        .workloads
        .iter()
        .map(|(name, relation)| run_cache_workload(name, relation, 16))
        .collect();
    let (sql_queries, sql_hits, sql_misses, sql_wall_ms) = run_sql_repeated_workload();
    let sql_hit_rate = sql_hits as f64 / (sql_hits + sql_misses).max(1) as f64;

    let mut cache_json =
        String::from("{\n  \"benchmark\": \"sequence_cache\",\n  \"workloads\": [\n");
    for (k, r) in cache_results.iter().enumerate() {
        cache_json.push_str(&format!(
            concat!(
                "    {{\"name\": \"{}\", \"participants\": {}, ",
                "\"cold_wall_ms\": {:.3}, \"warm_hit_wall_ms\": {:.4}, ",
                "\"warm_releases\": {}, \"speedup\": {:.1}, \"bit_identical\": {}}}{}\n"
            ),
            r.name,
            r.participants,
            r.cold_wall_ms,
            r.warm_hit_wall_ms,
            r.warm_releases,
            r.speedup,
            r.bit_identical,
            if k + 1 < cache_results.len() { "," } else { "" },
        ));
        println!(
            "{:>10}: cold {:.1} ms → warm hit {:.3} ms over {} repeats \
             ({:.0}× speedup, bit-identical: {})",
            r.name, r.cold_wall_ms, r.warm_hit_wall_ms, r.warm_releases, r.speedup, r.bit_identical,
        );
    }
    cache_json.push_str(&format!(
        concat!(
            "  ],\n  \"sql_repeated_workload\": {{\"queries\": {}, \"hits\": {}, ",
            "\"misses\": {}, \"hit_rate\": {:.4}, \"wall_ms_per_query\": {:.3}}}\n}}\n"
        ),
        sql_queries, sql_hits, sql_misses, sql_hit_rate, sql_wall_ms,
    ));
    println!(
        "  sql mix: {sql_queries} queries, {sql_hits} hits / {sql_misses} misses \
         (hit rate {sql_hit_rate:.2}), {sql_wall_ms:.2} ms/query"
    );

    if let Err(e) = std::fs::write(&cache_out_path, &cache_json) {
        eprintln!("failed to write {cache_out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {cache_out_path}");

    // --- Grouped fan-out bench → BENCH_groupby.json ---
    let gb = run_groupby_workload();
    let groupby_json = format!(
        concat!(
            "{{\n  \"benchmark\": \"groupby_fanout\",\n",
            "  \"k\": {},\n",
            "  \"serial_wall_ms\": {:.3},\n",
            "  \"pooled_wall_ms\": {:.3},\n",
            "  \"bit_identical\": {},\n",
            "  \"reports\": {},\n",
            "  \"hit_rate\": {:.4},\n",
            "  \"warm_report_wall_ms\": {:.4}\n}}\n"
        ),
        gb.k,
        gb.serial_wall_ms,
        gb.pooled_wall_ms,
        gb.bit_identical,
        gb.reports,
        gb.hit_rate,
        gb.warm_report_wall_ms,
    );
    println!(
        "   groupby: k={} serial {:.1} ms vs pooled {:.1} ms (bit-identical: {}), \
         {} repeated reports hit rate {:.2}, warm report {:.3} ms",
        gb.k,
        gb.serial_wall_ms,
        gb.pooled_wall_ms,
        gb.bit_identical,
        gb.reports,
        gb.hit_rate,
        gb.warm_report_wall_ms,
    );
    if let Err(e) = std::fs::write(&groupby_out_path, &groupby_json) {
        eprintln!("failed to write {groupby_out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {groupby_out_path}");

    // --- Telemetry overhead bench → BENCH_observe.json ---
    let triangle_relation = &env.workloads[0].1;
    let ob = run_observe_workload(triangle_relation);
    let observe_json = format!(
        concat!(
            "{{\n  \"benchmark\": \"observe_overhead\",\n",
            "  \"setup_wall_ms\": {:.3},\n",
            "  \"iterations\": {},\n",
            "  \"noop_wall_ms\": {:.3},\n",
            "  \"instrumented_wall_ms\": {:.3},\n",
            "  \"overhead_fraction\": {:.4},\n",
            "  \"bit_identical\": {},\n",
            "  \"traces_populated\": {}\n}}\n"
        ),
        env.setup_wall_ms,
        ob.iterations,
        ob.noop_wall_ms,
        ob.instrumented_wall_ms,
        ob.overhead_fraction,
        ob.bit_identical,
        ob.traces_populated,
    );
    println!(
        "   observe: {} releases — noop {:.1} ms vs instrumented {:.1} ms \
         ({:+.1}% overhead, bit-identical: {}, traces populated: {})",
        ob.iterations,
        ob.noop_wall_ms,
        ob.instrumented_wall_ms,
        ob.overhead_fraction * 100.0,
        ob.bit_identical,
        ob.traces_populated,
    );
    if let Err(e) = std::fs::write(&observe_out_path, &observe_json) {
        eprintln!("failed to write {observe_out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {observe_out_path}");

    // --- Multi-tenant server bench → BENCH_server.json ---
    let sv = run_server_workload();
    let server_json = format!(
        concat!(
            "{{\n  \"benchmark\": \"server_multi_tenant\",\n",
            "  \"clients\": {},\n",
            "  \"queries\": {},\n",
            "  \"refused\": {},\n",
            "  \"qps\": {:.1},\n",
            "  \"latency_ms\": {{\"p50\": {:.3}, \"p99\": {:.3}}},\n",
            "  \"server_latency_ms\": {{\"p50\": {:.3}, \"p99\": {:.3}}},\n",
            "  \"cache\": {{\"hits\": {}, \"misses\": {}}},\n",
            "  \"budget_conserved\": {},\n",
            "  \"bit_identical\": {}\n}}\n"
        ),
        sv.clients,
        sv.queries,
        sv.refused,
        sv.qps,
        sv.p50_ms,
        sv.p99_ms,
        sv.server_p50_ms,
        sv.server_p99_ms,
        sv.cache_hits,
        sv.cache_misses,
        sv.budget_conserved,
        sv.bit_identical,
    );
    println!(
        "    server: {} clients, {} queries at {:.0} q/s — p50 {:.2} ms, p99 {:.2} ms \
         (server-side p50 {:.2} / p99 {:.2}), cache {}h/{}m, \
         budget conserved: {}, bit-identical replay: {}",
        sv.clients,
        sv.queries,
        sv.qps,
        sv.p50_ms,
        sv.p99_ms,
        sv.server_p50_ms,
        sv.server_p99_ms,
        sv.cache_hits,
        sv.cache_misses,
        sv.budget_conserved,
        sv.bit_identical,
    );
    if let Err(e) = std::fs::write(&server_out_path, &server_json) {
        eprintln!("failed to write {server_out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {server_out_path}");

    // --- Incremental ingestion bench → BENCH_incremental.json ---
    let inc = run_incremental_workload();
    let inc_server = run_incremental_server_workload();
    let incremental_json = format!(
        concat!(
            "{{\n  \"benchmark\": \"incremental_ingest\",\n",
            "  \"warm_refresh\": {{\"participants\": {}, \"initial_rows\": {}, ",
            "\"rounds\": {}, \"warm_wall_ms\": {:.3}, \"cold_wall_ms\": {:.3}, ",
            "\"speedup\": {:.2}, \"warm_pivots\": {}, \"cold_pivots\": {}, ",
            "\"bit_identical\": {}}},\n",
            "  \"server\": {{\"queries\": {}, \"ingests\": {}, \"rows_ingested\": {}, ",
            "\"swept\": {}, \"cache_hits\": {}, \"cache_misses\": {}, ",
            "\"untouched_hits_preserved\": {}, \"replay_bit_identical\": {}}}\n}}\n"
        ),
        inc.participants,
        inc.initial_rows,
        inc.rounds,
        inc.warm_wall_ms,
        inc.cold_wall_ms,
        inc.cold_wall_ms / inc.warm_wall_ms.max(1e-9),
        inc.warm_pivots,
        inc.cold_pivots,
        inc.bit_identical,
        inc_server.queries,
        inc_server.ingests,
        inc_server.rows_ingested,
        inc_server.swept,
        inc_server.cache_hits,
        inc_server.cache_misses,
        inc_server.untouched_hits_preserved,
        inc_server.replay_bit_identical,
    );
    println!(
        "incremental: {} deltas over {} participants — warm refresh {:.1} ms / {} pivots \
         vs cold rebuild {:.1} ms / {} pivots ({:.1}×, bit-identical: {})",
        inc.rounds,
        inc.participants,
        inc.warm_wall_ms,
        inc.warm_pivots,
        inc.cold_wall_ms,
        inc.cold_pivots,
        inc.cold_wall_ms / inc.warm_wall_ms.max(1e-9),
        inc.bit_identical,
    );
    println!(
        "             server mix: {} queries + {} ingests ({} rows, {} swept), \
         cache {}h/{}m, untouched hits preserved: {}, replay bit-identical: {}",
        inc_server.queries,
        inc_server.ingests,
        inc_server.rows_ingested,
        inc_server.swept,
        inc_server.cache_hits,
        inc_server.cache_misses,
        inc_server.untouched_hits_preserved,
        inc_server.replay_bit_identical,
    );
    if let Err(e) = std::fs::write(&incremental_out_path, &incremental_json) {
        eprintln!("failed to write {incremental_out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {incremental_out_path}");

    // --- Gates (JSON files are written first so CI can always upload) ---
    let mut failed = false;
    for r in results.iter().filter(|r| r.warm_pivots >= r.cold_pivots) {
        eprintln!(
            "PERF REGRESSION: {} warm chains spent {} pivots vs {} cold",
            r.name, r.warm_pivots, r.cold_pivots
        );
        failed = true;
    }
    // Scaling gates: the sparse-LU backend must strictly beat the dense
    // B⁻¹ oracle wall-clock at the 4.5k-row point (where dense already
    // pays a 160 MB inverse and rows² per pivot) while agreeing with it
    // on the objective, and the 100k-row instance must have completed —
    // run_scaling_point panics on a failed solve, so reaching here with
    // the point present means it solved.
    for s in &scaling {
        if let Some(d) = &s.dense {
            if s.sparse_wall_ms >= d.wall_ms {
                eprintln!(
                    "PERF REGRESSION: sparse LU {:.1} ms not faster than dense B⁻¹ {:.1} ms \
                     at {} rows",
                    s.sparse_wall_ms, d.wall_ms, s.rows
                );
                failed = true;
            }
            let scale = s.objective.abs().max(d.objective.abs()).max(1.0);
            if (s.objective - d.objective).abs() > 1e-9 * scale {
                eprintln!(
                    "CORRECTNESS REGRESSION: sparse objective {:.12} vs dense {:.12} \
                     at {} rows",
                    s.objective, d.objective, s.rows
                );
                failed = true;
            }
        }
        if s.peak_factor_nnz == 0 {
            eprintln!(
                "CORRECTNESS REGRESSION: sparse solve at {} rows reported no factor fill-in",
                s.rows
            );
            failed = true;
        }
    }
    if !scaling.iter().any(|s| s.rows > 100_000) {
        eprintln!("PERF REGRESSION: no scaling instance above 100k rows completed");
        failed = true;
    }
    for r in &cache_results {
        if !r.bit_identical {
            eprintln!(
                "CORRECTNESS REGRESSION: {} cached releases diverged from the cache-less run",
                r.name
            );
            failed = true;
        }
    }
    // The acceptance gate: a warm hit must skip the sequence precompute
    // entirely, which shows up as ≥ 10× over cold on the fig-4 triangle
    // workload (in practice it is 100×+; 10× leaves headroom for noisy
    // shared runners).
    if let Some(triangle) = cache_results.iter().find(|r| r.name == "triangle") {
        if triangle.speedup < 10.0 {
            eprintln!(
                "PERF REGRESSION: triangle warm hits only {:.1}× faster than cold",
                triangle.speedup
            );
            failed = true;
        }
    }
    if sql_hit_rate < 0.5 {
        eprintln!("PERF REGRESSION: sql repeated workload hit rate {sql_hit_rate:.2} < 0.5");
        failed = true;
    }
    // Grouped fan-out gates: releases must not depend on the schedule, and
    // repeated reports must be served from the cache ((reports−1)/reports of
    // the per-group computations; 0.5 leaves headroom). Wall times are not
    // gated — the CI runner may be single-core, where the pool only adds
    // overhead.
    if !gb.bit_identical {
        eprintln!("CORRECTNESS REGRESSION: pooled grouped report diverged from the serial one");
        failed = true;
    }
    if gb.hit_rate < 0.5 {
        eprintln!(
            "PERF REGRESSION: repeated grouped reports hit rate {:.2} < 0.5",
            gb.hit_rate
        );
        failed = true;
    }
    // Telemetry gates: instrumentation may never change a release, and the
    // live recorder must stay within 5% of the no-op pass (plus a 5 ms
    // absolute slack so microsecond-level jitter on shared runners cannot
    // fail a run whose real overhead is nanoseconds per span).
    if !ob.bit_identical {
        eprintln!("CORRECTNESS REGRESSION: instrumented releases diverged from no-op releases");
        failed = true;
    }
    if !ob.traces_populated {
        eprintln!("CORRECTNESS REGRESSION: instrumented runs produced empty or non-monotone spans");
        failed = true;
    }
    if ob.instrumented_wall_ms > ob.noop_wall_ms * 1.05 + 5.0 {
        eprintln!(
            "PERF REGRESSION: instrumentation overhead {:.1}% (instrumented {:.1} ms vs \
             noop {:.1} ms) exceeds the 5% gate",
            ob.overhead_fraction * 100.0,
            ob.instrumented_wall_ms,
            ob.noop_wall_ms,
        );
        failed = true;
    }
    // Server gates: the sizing (8 slots for 8 one-request-at-a-time
    // clients) admits everything, so a refusal means admission accounting
    // broke; the two boolean invariants are the privacy guarantees the
    // server exists to provide.
    if sv.refused != 0 {
        eprintln!(
            "CORRECTNESS REGRESSION: {} server requests refused under non-saturating load",
            sv.refused
        );
        failed = true;
    }
    if !sv.budget_conserved {
        eprintln!("CORRECTNESS REGRESSION: tenant ledgers do not sum exactly to admissions");
        failed = true;
    }
    if !sv.bit_identical {
        eprintln!(
            "CORRECTNESS REGRESSION: serialized replay diverged from wire releases \
             (cache sharing or seed schedule is schedule-dependent)"
        );
        failed = true;
    }
    if !(sv.server_p50_ms.is_finite() && sv.server_p99_ms.is_finite()) {
        eprintln!("CORRECTNESS REGRESSION: server latency histogram recorded no samples");
        failed = true;
    }
    // Incremental-ingestion gates: warm re-release must strictly beat the
    // full cold rebuild wall-clock (it skips phase 1 on every H chain run)
    // while releasing bit-identically, and the server-level mixed run must
    // preserve the untouched table's hit rate and replay bit-identically
    // across the interleaved ingests.
    if inc.warm_wall_ms >= inc.cold_wall_ms {
        eprintln!(
            "PERF REGRESSION: warm refresh {:.1} ms not faster than cold rebuild {:.1} ms",
            inc.warm_wall_ms, inc.cold_wall_ms
        );
        failed = true;
    }
    if inc.warm_pivots >= inc.cold_pivots {
        eprintln!(
            "PERF REGRESSION: warm refresh spent {} pivots vs {} cold",
            inc.warm_pivots, inc.cold_pivots
        );
        failed = true;
    }
    if !inc.bit_identical {
        eprintln!("CORRECTNESS REGRESSION: warm refresh diverged from the cold rebuild");
        failed = true;
    }
    if !inc_server.untouched_hits_preserved {
        eprintln!(
            "CORRECTNESS REGRESSION: ingests disturbed the untouched table's cache entries \
             ({} hits / {} misses)",
            inc_server.cache_hits, inc_server.cache_misses
        );
        failed = true;
    }
    if !inc_server.replay_bit_identical {
        eprintln!(
            "CORRECTNESS REGRESSION: replay diverged from live releases across interleaved ingests"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
