//! Perf smoke test: cold vs warm-started sequence precompute on the fig-4
//! workloads (triangle and 2-star counting under node privacy).
//!
//! Times a full `H`/`G` precompute twice per workload — entry-by-entry cold
//! solves (`chain_run_len = 1`) and the default warm-started chains — and
//! writes `BENCH_lp.json` with wall times and pivot counts. CI uploads the
//! file as an artifact on every run, so the pivot/wall-time trajectory of
//! the LP hot path is tracked over time. Pivot counts are deterministic;
//! wall times are indicative (shared runners).
//!
//! Usage: `perf_smoke [output.json]` (default `BENCH_lp.json`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rmdp_core::efficient::EfficientSequences;
use rmdp_core::params::MechanismParams;
use rmdp_core::subgraph::{PrivacyUnit, SubgraphCounter};
use rmdp_core::{MechanismSequences, Parallelism, SensitiveKRelation};
use rmdp_graph::{generators, Pattern};
use std::time::Instant;

struct WorkloadResult {
    name: String,
    participants: usize,
    lp_solves: usize,
    cold_wall_ms: f64,
    cold_pivots: usize,
    warm_wall_ms: f64,
    warm_pivots: usize,
    warm_start_hits: usize,
}

fn fig4_relation(pattern: &Pattern) -> SensitiveKRelation {
    // Small enough to keep the CI smoke under a minute — the 2-star family
    // on this graph is still a ~350-row LP per entry — while large enough
    // that warm-vs-cold pivot counts are meaningful.
    let mut rng = StdRng::seed_from_u64(77);
    let graph = generators::gnp_average_degree(24, 6.0, &mut rng);
    SubgraphCounter::new(
        pattern.clone(),
        PrivacyUnit::Node,
        MechanismParams::paper_node_privacy(0.5),
    )
    .build_sensitive_relation(&graph)
}

fn precompute_timed(seq: &mut EfficientSequences) -> f64 {
    let start = Instant::now();
    seq.precompute(Parallelism::Serial)
        .expect("fig-4 entry LPs are feasible and bounded");
    start.elapsed().as_secs_f64() * 1e3
}

fn run_workload(pattern: Pattern) -> WorkloadResult {
    let relation = fig4_relation(&pattern);
    let participants = relation.num_participants();

    let mut cold = EfficientSequences::new(relation.clone()).with_chain_run_len(1);
    let cold_wall_ms = precompute_timed(&mut cold);

    let mut warm = EfficientSequences::new(relation);
    let warm_wall_ms = precompute_timed(&mut warm);

    let (c, w) = (cold.stats(), warm.stats());
    assert_eq!(c.h_solves + c.g_solves, w.h_solves + w.g_solves);
    WorkloadResult {
        name: pattern.name().to_string(),
        participants,
        lp_solves: w.h_solves + w.g_solves,
        cold_wall_ms,
        cold_pivots: c.total_pivots,
        warm_wall_ms,
        warm_pivots: w.total_pivots,
        warm_start_hits: w.warm_start_hits,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_lp.json".to_string());

    let results: Vec<WorkloadResult> = [Pattern::triangle(), Pattern::k_star(2)]
        .into_iter()
        .map(run_workload)
        .collect();

    let mut json = String::from("{\n  \"benchmark\": \"lp_warm_chains\",\n  \"workloads\": [\n");
    for (k, r) in results.iter().enumerate() {
        let ratio = r.warm_pivots as f64 / r.cold_pivots.max(1) as f64;
        json.push_str(&format!(
            concat!(
                "    {{\"name\": \"{}\", \"participants\": {}, \"lp_solves\": {}, ",
                "\"cold\": {{\"wall_ms\": {:.3}, \"pivots\": {}}}, ",
                "\"warm\": {{\"wall_ms\": {:.3}, \"pivots\": {}, \"warm_start_hits\": {}}}, ",
                "\"pivot_ratio\": {:.4}}}{}\n"
            ),
            r.name,
            r.participants,
            r.lp_solves,
            r.cold_wall_ms,
            r.cold_pivots,
            r.warm_wall_ms,
            r.warm_pivots,
            r.warm_start_hits,
            ratio,
            if k + 1 < results.len() { "," } else { "" },
        ));
        println!(
            "{:>10}: {} LPs over {} participants — cold {} pivots / {:.1} ms, \
             warm {} pivots / {:.1} ms ({} warm starts, pivot ratio {:.2})",
            r.name,
            r.lp_solves,
            r.participants,
            r.cold_pivots,
            r.cold_wall_ms,
            r.warm_pivots,
            r.warm_wall_ms,
            r.warm_start_hits,
            ratio,
        );
    }
    json.push_str("  ]\n}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");

    let regressed: Vec<&WorkloadResult> = results
        .iter()
        .filter(|r| r.warm_pivots >= r.cold_pivots)
        .collect();
    if !regressed.is_empty() {
        for r in &regressed {
            eprintln!(
                "PERF REGRESSION: {} warm chains spent {} pivots vs {} cold",
                r.name, r.warm_pivots, r.cold_pivots
            );
        }
        std::process::exit(1);
    }
}
