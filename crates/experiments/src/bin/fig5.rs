//! Reproduces the paper's Figure 5 (running time of the recursive mechanism
//! versus graph size).

use rmdp_experiments::runners::fig5;
use rmdp_experiments::CliOptions;

fn main() {
    let options = CliOptions::from_env();
    eprintln!(
        "fig5: scale={}, seed={}",
        options.scale.name(),
        options.seed
    );
    let points = fig5::run(&options);
    let table = fig5::to_table(&points);
    table.print();
    println!();
    println!("{}", fig5::paper_expectation());
    if let Some(path) = &options.csv {
        if let Err(e) = table.write_csv(path) {
            eprintln!("failed to write CSV to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
