//! Reproduces the paper's Figure 4 (median relative error of the four
//! mechanisms). Select the sweep with `--panel a|b|c`.

use rmdp_experiments::runners::fig4::{self, Panel};
use rmdp_experiments::CliOptions;

fn main() {
    let options = CliOptions::from_env();
    let panel = match options.panel.as_deref() {
        Some(p) => match Panel::parse(p) {
            Ok(panel) => panel,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        },
        None => Panel::Nodes,
    };
    eprintln!(
        "fig4 panel {:?}: scale={}, seed={}, trials={}",
        panel,
        options.scale.name(),
        options.seed,
        options.trials()
    );
    let points = fig4::run_panel(panel, &options);
    let table = fig4::to_table(panel, &points);
    table.print();
    println!();
    println!("{}", fig4::paper_expectation());
    if let Some(path) = &options.csv {
        if let Err(e) = table.write_csv(path) {
            eprintln!("failed to write CSV to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
