//! Reproduces the paper's Figure 9 (error and running time on random 3-DNF /
//! 3-CNF K-relations as the support size varies).

use rmdp_experiments::runners::fig8_9::{self, Sweep};
use rmdp_experiments::CliOptions;

fn main() {
    let options = CliOptions::from_env();
    eprintln!(
        "fig9: scale={}, seed={}, trials={}",
        options.scale.name(),
        options.seed,
        options.trials()
    );
    let points = fig8_9::run(Sweep::Support, &options);
    let table = fig8_9::to_table(Sweep::Support, &points);
    table.print();
    println!();
    println!("{}", fig8_9::paper_expectation(Sweep::Support));
    if let Some(path) = &options.csv {
        if let Err(e) = table.write_csv(path) {
            eprintln!("failed to write CSV to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
