//! Reproduces the paper's Figure 1 / Table 1 (mechanism comparison), pairing
//! the paper's analytical error bounds with measured errors of this
//! implementation.

use rmdp_experiments::runners::table1;
use rmdp_experiments::CliOptions;

fn main() {
    let options = CliOptions::from_env();
    eprintln!(
        "table1: scale={}, seed={}, trials={}",
        options.scale.name(),
        options.seed,
        options.trials()
    );
    let rows = table1::run(&options);
    let table = table1::to_table(&rows);
    table.print();
    if let Some(path) = &options.csv {
        if let Err(e) = table.write_csv(path) {
            eprintln!("failed to write CSV to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
