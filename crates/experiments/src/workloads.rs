//! Workload generators for the evaluation.
//!
//! The graph workloads come from `rmdp-graph::generators`; this module adds
//! the synthetic K-relations of Sec. 6.2: relations in which every tuple is
//! annotated with a random 3-DNF or 3-CNF expression (a 3-DNF K-relation is
//! what a union of many join results produces; a 3-CNF K-relation comes from
//! a join of many unions). The number of participants equals the support
//! size and every tuple has weight 1, exactly as in the paper.

use rand::seq::SliceRandom;
use rand::Rng;
use rmdp_core::SensitiveKRelation;
use rmdp_krelation::participant::ParticipantId;
use rmdp_krelation::Expr;

/// The expression shape of a synthetic K-relation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExpressionShape {
    /// Disjunctive normal form: an OR of `clauses` conjunctions of
    /// `literals_per_clause` distinct variables.
    Dnf,
    /// Conjunctive normal form: an AND of `clauses` disjunctions of
    /// `literals_per_clause` distinct variables.
    Cnf,
}

impl ExpressionShape {
    /// Display name ("3-DNF" / "3-CNF" for the paper's setting).
    pub fn label(self, literals_per_clause: usize) -> String {
        match self {
            ExpressionShape::Dnf => format!("{literals_per_clause}-DNF"),
            ExpressionShape::Cnf => format!("{literals_per_clause}-CNF"),
        }
    }
}

/// Parameters of a synthetic K-relation workload.
#[derive(Clone, Copy, Debug)]
pub struct RandomKRelationSpec {
    /// Support size `|supp(R)|`; the participant count `|P|` equals it.
    pub support: usize,
    /// Number of clauses per annotation.
    pub clauses: usize,
    /// Literals per clause (3 in the paper).
    pub literals_per_clause: usize,
    /// DNF or CNF.
    pub shape: ExpressionShape,
}

/// Generates a random sensitive K-relation per the spec (every tuple has
/// weight 1, so the true answer is the support size).
pub fn random_krelation<R: Rng + ?Sized>(
    spec: RandomKRelationSpec,
    rng: &mut R,
) -> SensitiveKRelation {
    let participants: Vec<ParticipantId> = (0..spec.support as u32).map(ParticipantId).collect();
    let mut terms = Vec::with_capacity(spec.support);
    for _ in 0..spec.support {
        let clauses: Vec<Expr> = (0..spec.clauses)
            .map(|_| {
                let vars = sample_distinct(&participants, spec.literals_per_clause, rng);
                match spec.shape {
                    ExpressionShape::Dnf => Expr::conjunction_of_vars(vars),
                    ExpressionShape::Cnf => Expr::disjunction_of_vars(vars),
                }
            })
            .collect();
        let expr = match spec.shape {
            ExpressionShape::Dnf => Expr::or(clauses),
            ExpressionShape::Cnf => Expr::and(clauses),
        };
        terms.push((expr, 1.0));
    }
    SensitiveKRelation::from_terms(participants, terms)
}

fn sample_distinct<R: Rng + ?Sized>(
    pool: &[ParticipantId],
    count: usize,
    rng: &mut R,
) -> Vec<ParticipantId> {
    let count = count.min(pool.len());
    pool.choose_multiple(rng, count).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rmdp_krelation::phi::max_phi_sensitivity;

    fn spec(shape: ExpressionShape, clauses: usize) -> RandomKRelationSpec {
        RandomKRelationSpec {
            support: 40,
            clauses,
            literals_per_clause: 3,
            shape,
        }
    }

    #[test]
    fn dnf_relations_have_unit_phi_sensitivity() {
        let mut rng = StdRng::seed_from_u64(1);
        let q = random_krelation(spec(ExpressionShape::Dnf, 4), &mut rng);
        assert_eq!(q.support_size(), 40);
        assert_eq!(q.num_participants(), 40);
        assert_eq!(q.true_answer(), 40.0);
        for (e, _) in q.terms() {
            assert!(max_phi_sensitivity(e) <= 1.0 + 1e-12);
            assert!(e.len() <= 12);
        }
    }

    #[test]
    fn cnf_relations_can_have_larger_phi_sensitivity() {
        let mut rng = StdRng::seed_from_u64(2);
        let q = random_krelation(spec(ExpressionShape::Cnf, 5), &mut rng);
        let max_s = q
            .terms()
            .iter()
            .map(|(e, _)| max_phi_sensitivity(e))
            .fold(0.0f64, f64::max);
        // With 5 clauses over 40 variables, some variable repeats across
        // clauses with high probability, giving S ≥ 2 somewhere.
        assert!(max_s >= 1.0);
        assert_eq!(q.true_answer(), 40.0);
    }

    #[test]
    fn generation_is_deterministic_given_the_seed() {
        let a = random_krelation(spec(ExpressionShape::Dnf, 3), &mut StdRng::seed_from_u64(9));
        let b = random_krelation(spec(ExpressionShape::Dnf, 3), &mut StdRng::seed_from_u64(9));
        assert_eq!(a.terms().len(), b.terms().len());
        for ((ea, _), (eb, _)) in a.terms().iter().zip(b.terms()) {
            assert_eq!(ea, eb);
        }
    }

    #[test]
    fn labels_match_the_paper_nomenclature() {
        assert_eq!(ExpressionShape::Dnf.label(3), "3-DNF");
        assert_eq!(ExpressionShape::Cnf.label(3), "3-CNF");
    }
}
