//! Experiment harness reproducing the paper's evaluation (Sec. 6).
//!
//! Every table and figure has a dedicated runner and a thin CLI binary:
//!
//! | paper artefact | runner | binary |
//! |---|---|---|
//! | Fig. 1 / Table 1 (mechanism comparison) | [`runners::table1`] | `cargo run -p rmdp-experiments --bin table1` |
//! | Fig. 4(a)(b)(c) (error vs \|V\|, avg degree, ε) | [`runners::fig4`] | `--bin fig4 -- --panel a\|b\|c` |
//! | Fig. 5 (running time vs \|V\|) | [`runners::fig5`] | `--bin fig5` |
//! | Fig. 6 & 7 (real graphs: sizes, time, error) | [`runners::fig6_7`] | `--bin fig6_7` |
//! | Fig. 8 (error/time vs expression length) | [`runners::fig8_9`] | `--bin fig8` |
//! | Fig. 9 (error/time vs \|supp(R)\|) | [`runners::fig8_9`] | `--bin fig9` |
//!
//! All binaries accept `--scale quick|paper|full` (default `quick`),
//! `--seed <u64>`, `--trials <n>` and `--csv <path>`. `quick` shrinks the
//! grids so the full suite finishes in minutes; `paper` matches the
//! published parameters (and, like the original implementation, can take
//! hours for the largest points). `EXPERIMENTS.md` records the
//! paper-vs-measured comparison for each artefact.
//!
//! Criterion benches live under `benches/`: raw simplex (`lp_bench`),
//! φ-encoding (`phi_bench`), subgraph enumeration (`subgraph_bench`),
//! end-to-end releases (`mechanism_bench`, `ablation_bench`) and the
//! serial-vs-parallel sequence precompute on the fig-4 workloads
//! (`parallel_scaling`, exercising the `Parallelism` knob of
//! `MechanismParams` at 1/2/4/8 workers).

#![deny(missing_docs)]

pub mod cli;
pub mod report;
pub mod runners;
pub mod scale;
pub mod workloads;

pub use cli::CliOptions;
pub use scale::Scale;
