//! Fig. 8 and Fig. 9: the mechanism on synthetic K-relations.
//!
//! The paper generates K-relations directly (rather than from a particular
//! SQL query): every tuple is annotated with a random 3-DNF or 3-CNF
//! expression, `|P| = |supp(R)|` and `q(t) = 1`. Fig. 8 sweeps the number of
//! clauses per expression at fixed support 1000; Fig. 9 sweeps the support
//! size at 3 clauses per expression. Both figures report the median relative
//! error — with the reference curve `ŨS_q / (ε · q(P, R))` — and the running
//! time.

use crate::cli::CliOptions;
use crate::report::{fmt_float, fmt_secs, Table};
use crate::workloads::{random_krelation, ExpressionShape, RandomKRelationSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rmdp_core::efficient::EfficientSequences;
use rmdp_core::params::MechanismParams;
use rmdp_core::RecursiveMechanism;
use rmdp_noise::accuracy::{median, relative_error};

/// Which sweep to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sweep {
    /// Fig. 8: vary the number of clauses per expression.
    Clauses,
    /// Fig. 9: vary the support size.
    Support,
}

/// One measured point.
#[derive(Clone, Debug)]
pub struct KRelationPoint {
    /// "3-DNF" or "3-CNF".
    pub shape: String,
    /// The x value (clauses or support size).
    pub x: usize,
    /// Median relative error of the recursive mechanism.
    pub median_relative_error: f64,
    /// The reference curve `ŨS_q / (ε · true answer)`.
    pub reference_curve: f64,
    /// Wall-clock seconds (preparation + all releases).
    pub seconds: f64,
    /// The true answer (the support size).
    pub true_answer: f64,
}

/// Runs one sweep for both expression shapes.
pub fn run(sweep: Sweep, options: &CliOptions) -> Vec<KRelationPoint> {
    let scale = options.scale;
    let trials = options.trials();
    let epsilon = 0.5;
    let params = MechanismParams::paper_edge_privacy(epsilon);
    let mut out = Vec::new();

    for shape in [ExpressionShape::Dnf, ExpressionShape::Cnf] {
        let xs: Vec<usize> = match sweep {
            Sweep::Clauses => scale.fig8_clause_grid(),
            Sweep::Support => scale.fig9_support_grid(),
        };
        for &x in &xs {
            let spec = match sweep {
                Sweep::Clauses => RandomKRelationSpec {
                    support: scale.fig8_support(),
                    clauses: x,
                    literals_per_clause: 3,
                    shape,
                },
                Sweep::Support => RandomKRelationSpec {
                    support: x,
                    clauses: 3,
                    literals_per_clause: 3,
                    shape,
                },
            };
            let mut rng = StdRng::seed_from_u64(
                options
                    .seed
                    .wrapping_add(x as u64)
                    .wrapping_mul(if shape == ExpressionShape::Dnf { 3 } else { 7 }),
            );
            let query = random_krelation(spec, &mut rng);
            let true_answer = query.true_answer();
            let universal = query.universal_sensitivity();
            let reference_curve = if true_answer > 0.0 {
                universal / (epsilon * true_answer)
            } else {
                0.0
            };

            let watch = rmdp_observe::Stopwatch::start();
            let sequences = EfficientSequences::new(query);
            let mut mechanism = match RecursiveMechanism::new(sequences, params) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("skipping {shape:?} x={x}: {e}");
                    continue;
                }
            };
            let errors: Vec<f64> = match mechanism.release_many(trials, &mut rng) {
                Ok(releases) => releases
                    .iter()
                    .map(|r| relative_error(r.noisy_answer, true_answer))
                    .collect(),
                Err(e) => {
                    eprintln!("skipping {shape:?} x={x}: {e}");
                    continue;
                }
            };
            let seconds = watch.elapsed_seconds();

            out.push(KRelationPoint {
                shape: shape.label(spec.literals_per_clause),
                x,
                median_relative_error: median(&errors),
                reference_curve,
                seconds,
                true_answer,
            });
        }
    }
    out
}

/// Renders the table for the given sweep.
pub fn to_table(sweep: Sweep, points: &[KRelationPoint]) -> Table {
    let (title, x_label) = match sweep {
        Sweep::Clauses => (
            "Figure 8: error and time vs clauses per expression",
            "clauses",
        ),
        Sweep::Support => ("Figure 9: error and time vs |supp(R)|", "|supp(R)|"),
    };
    let mut table = Table::new(
        title,
        &[
            "shape",
            x_label,
            "median relative error",
            "US/(eps*answer) reference",
            "time",
            "true answer",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.shape.clone(),
            p.x.to_string(),
            fmt_float(p.median_relative_error),
            fmt_float(p.reference_curve),
            fmt_secs(p.seconds),
            fmt_float(p.true_answer),
        ]);
    }
    table
}

/// The qualitative expectation from the paper.
pub fn paper_expectation(sweep: Sweep) -> &'static str {
    match sweep {
        Sweep::Clauses => {
            "Paper expectation (Fig. 8): the error tracks the ŨS/(ε·answer) reference closely, \
             grows slowly with the number of clauses, and 3-CNF is somewhat noisier than 3-DNF \
             (its φ-sensitivities exceed 1); the running time grows polynomially with the \
             expression length."
        }
        Sweep::Support => {
            "Paper expectation (Fig. 9): ŨS is insensitive to the support size, so the relative \
             error decreases as |supp(R)| grows, while the running time grows polynomially with \
             |supp(R)|."
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn table_rendering() {
        let points = vec![KRelationPoint {
            shape: "3-DNF".into(),
            x: 3,
            median_relative_error: 0.08,
            reference_curve: 0.06,
            seconds: 1.2,
            true_answer: 200.0,
        }];
        let t = to_table(Sweep::Clauses, &points);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("3-DNF"));
        assert!(!paper_expectation(Sweep::Clauses).is_empty());
        assert!(!paper_expectation(Sweep::Support).is_empty());
    }

    /// A genuinely tiny end-to-end run (small support, few trials) so the
    /// K-relation pipeline is exercised in the regular test suite.
    #[test]
    fn tiny_end_to_end_sweep() {
        let options = CliOptions {
            trials: Some(3),
            scale: Scale::Quick,
            ..CliOptions::default()
        };
        // Run a single hand-built point rather than the full quick grid.
        let spec = RandomKRelationSpec {
            support: 30,
            clauses: 2,
            literals_per_clause: 3,
            shape: ExpressionShape::Dnf,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let query = random_krelation(spec, &mut rng);
        let truth = query.true_answer();
        let mut mech = RecursiveMechanism::new(
            EfficientSequences::new(query),
            MechanismParams::paper_edge_privacy(0.5),
        )
        .unwrap();
        let releases = mech.release_many(options.trials(), &mut rng).unwrap();
        for r in &releases {
            // The true answer is recovered from the LP optimum at i = |P|,
            // so compare with a numerical tolerance.
            assert!((r.true_answer - truth).abs() < 1e-6);
            assert!(r.noisy_answer.is_finite());
        }
    }
}
