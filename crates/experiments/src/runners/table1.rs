//! Table 1 / Fig. 1: the mechanism-comparison table.
//!
//! The paper's first figure is an analytical comparison of error bounds,
//! running-time classes and privacy guarantees. This runner reproduces it as
//! a two-part artefact: the analytical rows (quoted from the paper's table)
//! and, next to them, *measured* median relative errors of our
//! implementations on one benchmark graph so the reader can check that the
//! implementations line up with the claims.

use crate::cli::CliOptions;
use crate::report::{fmt_float, Table};
use crate::runners::{run_baseline, run_recursive, QueryKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rmdp_core::subgraph::PrivacyUnit;
use rmdp_graph::generators;

/// One comparison row.
#[derive(Clone, Debug)]
pub struct ComparisonRow {
    /// Query family.
    pub query: &'static str,
    /// Mechanism name.
    pub mechanism: String,
    /// Privacy guarantee, as the paper states it.
    pub guarantee: String,
    /// The paper's error bound (order notation).
    pub paper_error_bound: String,
    /// Measured median relative error on the benchmark graph.
    pub measured_error: f64,
}

/// Runs the comparison on one benchmark graph.
pub fn run(options: &CliOptions) -> Vec<ComparisonRow> {
    let trials = options.trials();
    let epsilon = 0.5;
    let delta = 0.1;
    let (nodes, avgdeg) = match options.scale {
        crate::scale::Scale::Quick => (40usize, 6.0),
        _ => (200usize, 10.0),
    };
    let mut rows = Vec::new();

    for query in QueryKind::all() {
        let mut rng = StdRng::seed_from_u64(options.seed.wrapping_add(query.name().len() as u64));
        let graph = generators::gnp_average_degree(nodes, avgdeg, &mut rng);

        if let Ok(o) = run_recursive(&graph, query, PrivacyUnit::Node, epsilon, trials, &mut rng) {
            rows.push(ComparisonRow {
                query: query.name(),
                mechanism: "recursive mechanism (node privacy)".into(),
                guarantee: format!("{epsilon}-DP, node"),
                paper_error_bound: "~O(LS~_q / eps)".into(),
                measured_error: o.median_relative_error,
            });
        }
        if let Ok(o) = run_recursive(&graph, query, PrivacyUnit::Edge, epsilon, trials, &mut rng) {
            rows.push(ComparisonRow {
                query: query.name(),
                mechanism: "recursive mechanism (edge privacy)".into(),
                guarantee: format!("{epsilon}-DP, edge"),
                paper_error_bound: "~O(LS~_q / eps)".into(),
                measured_error: o.median_relative_error,
            });
        }
        let local = query.local_sensitivity_baseline(epsilon, delta);
        let local_outcome = run_baseline(local.as_ref(), &graph, trials, &mut rng);
        rows.push(ComparisonRow {
            query: query.name(),
            mechanism: local.name().to_owned(),
            guarantee: match query {
                QueryKind::TwoTriangle => format!("({epsilon}, {delta})-DP, edge"),
                _ => format!("{epsilon}-DP, edge"),
            },
            paper_error_bound: "O(LS_q / eps)".into(),
            measured_error: local_outcome.median_relative_error,
        });
        let rhms = query.rhms_baseline(epsilon);
        let rhms_outcome = run_baseline(rhms.as_ref(), &graph, trials, &mut rng);
        rows.push(ComparisonRow {
            query: query.name(),
            mechanism: "RHMS".into(),
            guarantee: format!("({epsilon}, {delta})-adversarial, edge"),
            paper_error_bound: "Theta((k l^2 log|V|)^(l-1) / eps)".into(),
            measured_error: rhms_outcome.median_relative_error,
        });
    }
    rows
}

/// Renders the comparison table.
pub fn to_table(rows: &[ComparisonRow]) -> Table {
    let mut table = Table::new(
        "Table 1 / Figure 1: mechanism comparison (paper bound vs measured error)",
        &[
            "query",
            "mechanism",
            "guarantee",
            "paper error bound",
            "measured median rel. error",
        ],
    );
    for r in rows {
        table.push_row(vec![
            r.query.to_owned(),
            r.mechanism.clone(),
            r.guarantee.clone(),
            r.paper_error_bound.clone(),
            fmt_float(r.measured_error),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering() {
        let rows = vec![ComparisonRow {
            query: "triangle",
            mechanism: "recursive mechanism (edge privacy)".into(),
            guarantee: "0.5-DP, edge".into(),
            paper_error_bound: "~O(LS~_q / eps)".into(),
            measured_error: 0.03,
        }];
        let t = to_table(&rows);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("recursive mechanism"));
    }
}
