//! One runner per paper artefact, plus shared helpers.

pub mod fig4;
pub mod fig5;
pub mod fig6_7;
pub mod fig8_9;
pub mod table1;

use rand::Rng;
use rmdp_baselines::kstar::KStarMechanism;
use rmdp_baselines::ktriangle::KTriangleMechanism;
use rmdp_baselines::rhms::Rhms;
use rmdp_baselines::smooth_triangle::SmoothSensitivityTriangle;
use rmdp_baselines::BaselineMechanism;
use rmdp_core::params::MechanismParams;
use rmdp_core::subgraph::{PrivacyUnit, SubgraphCounter};
use rmdp_core::MechanismError;
use rmdp_graph::{Graph, Pattern};
use rmdp_noise::accuracy::{median, relative_error};
use std::time::Duration;

/// The three query families of the paper's subgraph-counting evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// Triangle counting.
    Triangle,
    /// 2-star counting.
    TwoStar,
    /// 2-triangle counting.
    TwoTriangle,
}

impl QueryKind {
    /// All three queries in the paper's order.
    pub fn all() -> [QueryKind; 3] {
        [
            QueryKind::Triangle,
            QueryKind::TwoStar,
            QueryKind::TwoTriangle,
        ]
    }

    /// The query pattern.
    pub fn pattern(self) -> Pattern {
        match self {
            QueryKind::Triangle => Pattern::triangle(),
            QueryKind::TwoStar => Pattern::k_star(2),
            QueryKind::TwoTriangle => Pattern::k_triangle(2),
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Triangle => "triangle",
            QueryKind::TwoStar => "2-star",
            QueryKind::TwoTriangle => "2-triangle",
        }
    }

    /// Whether the query is the (large-support) star query, which uses the
    /// reduced quick-scale grids.
    pub fn is_star(self) -> bool {
        self == QueryKind::TwoStar
    }

    /// The paper's local-sensitivity baseline for this query.
    pub fn local_sensitivity_baseline(
        self,
        epsilon: f64,
        delta: f64,
    ) -> Box<dyn BaselineMechanism> {
        match self {
            QueryKind::Triangle => Box::new(SmoothSensitivityTriangle::new(epsilon)),
            QueryKind::TwoStar => Box::new(KStarMechanism::new(2, epsilon)),
            QueryKind::TwoTriangle => Box::new(KTriangleMechanism::new(2, epsilon, delta)),
        }
    }

    /// The RHMS baseline for this query.
    pub fn rhms_baseline(self, epsilon: f64) -> Box<dyn BaselineMechanism> {
        Box::new(Rhms::for_pattern(self.pattern(), epsilon))
    }
}

/// Result of evaluating one mechanism on one graph.
#[derive(Clone, Copy, Debug, Default)]
pub struct MechanismOutcome {
    /// Median relative error over the trials.
    pub median_relative_error: f64,
    /// Wall-clock time to prepare (pattern matching, K-relation, Δ) — zero
    /// for the baselines.
    pub prepare_time: Duration,
    /// Mean wall-clock time of one release.
    pub mean_release_time: Duration,
    /// The true count on this graph.
    pub true_count: f64,
}

/// Runs the recursive mechanism on one graph and summarises the error.
pub fn run_recursive<R: Rng + ?Sized>(
    graph: &Graph,
    query: QueryKind,
    privacy: PrivacyUnit,
    epsilon: f64,
    trials: usize,
    rng: &mut R,
) -> Result<MechanismOutcome, MechanismError> {
    let params = match privacy {
        PrivacyUnit::Node => MechanismParams::paper_node_privacy(epsilon),
        PrivacyUnit::Edge => MechanismParams::paper_edge_privacy(epsilon),
    };
    let counter = SubgraphCounter::new(query.pattern(), privacy, params);
    let watch = rmdp_observe::Stopwatch::start();
    let mut prepared = counter.prepare(graph)?;
    // Force Δ so the preparation time includes the binary search over G.
    let _ = prepared.mechanism_mut().delta()?;
    let prepare_time = watch.elapsed();

    let answers = prepared.release_many(trials, rng)?;
    let errors: Vec<f64> = answers
        .iter()
        .map(|a| relative_error(a.noisy_count, a.true_count))
        .collect();
    let total_release: Duration = answers.iter().map(|a| a.release_time).sum();
    Ok(MechanismOutcome {
        median_relative_error: median(&errors),
        prepare_time,
        mean_release_time: total_release / trials.max(1) as u32,
        true_count: prepared.true_count,
    })
}

/// Runs a baseline mechanism on one graph and summarises the error.
pub fn run_baseline<R: Rng>(
    baseline: &dyn BaselineMechanism,
    graph: &Graph,
    trials: usize,
    rng: &mut R,
) -> MechanismOutcome {
    let truth = baseline.true_count(graph);
    let watch = rmdp_observe::Stopwatch::start();
    let errors: Vec<f64> = (0..trials)
        .map(|_| relative_error(baseline.release(graph, rng), truth))
        .collect();
    let elapsed = watch.elapsed();
    MechanismOutcome {
        median_relative_error: median(&errors),
        prepare_time: Duration::ZERO,
        mean_release_time: elapsed / trials.max(1) as u32,
        true_count: truth,
    }
}

/// Pools several per-graph medians into one representative value (the median
/// of medians, which is what the paper's per-point markers show).
pub fn pool_medians(values: &[f64]) -> f64 {
    median(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rmdp_graph::generators;

    #[test]
    fn query_kinds_expose_patterns_and_baselines() {
        for q in QueryKind::all() {
            assert!(q.pattern().is_connected());
            assert!(!q.name().is_empty());
            let b = q.local_sensitivity_baseline(0.5, 0.1);
            assert!(!b.name().is_empty());
            let r = q.rhms_baseline(0.5);
            assert_eq!(r.name(), "RHMS");
        }
        assert!(QueryKind::TwoStar.is_star());
        assert!(!QueryKind::Triangle.is_star());
    }

    #[test]
    fn recursive_and_baseline_runs_produce_sane_outcomes() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::gnp_average_degree(25, 6.0, &mut rng);
        let rec =
            run_recursive(&g, QueryKind::Triangle, PrivacyUnit::Edge, 1.0, 5, &mut rng).unwrap();
        assert!(rec.median_relative_error.is_finite());
        assert!(rec.true_count >= 0.0);
        assert!(rec.prepare_time > Duration::ZERO);

        let baseline = QueryKind::Triangle.local_sensitivity_baseline(1.0, 0.1);
        let base = run_baseline(baseline.as_ref(), &g, 5, &mut rng);
        assert!(base.median_relative_error.is_finite());
        assert_eq!(base.true_count, rec.true_count);
    }

    #[test]
    fn pooling_medians_is_the_median() {
        assert_eq!(pool_medians(&[0.1, 0.5, 0.2]), 0.2);
    }
}
