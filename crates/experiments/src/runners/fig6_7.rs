//! Fig. 6 and Fig. 7: triangle counting on (stand-ins for) real graphs.
//!
//! Fig. 6 is a table of the datasets' sizes, triangle counts and the
//! mechanism's running time; Fig. 7 compares the median relative error of
//! the four mechanisms on those graphs. The original datasets are not
//! redistributable, so the harness generates synthetic stand-ins matching
//! each dataset's node/edge counts (scaled down by the quick preset) with a
//! preferential-attachment degree profile — see DESIGN.md, substitutions.

use crate::cli::CliOptions;
use crate::report::{fmt_float, fmt_secs, Table};
use crate::runners::{run_baseline, run_recursive, QueryKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rmdp_core::subgraph::PrivacyUnit;
use rmdp_graph::generators::{real_world_standin, PAPER_REAL_GRAPHS};
use rmdp_graph::subgraph::triangle_count;

/// Results for one dataset stand-in.
#[derive(Clone, Debug)]
pub struct RealGraphResult {
    /// Dataset name.
    pub name: &'static str,
    /// Nodes of the stand-in actually used.
    pub nodes: usize,
    /// Edges of the stand-in actually used.
    pub edges: usize,
    /// Triangles of the stand-in.
    pub triangles: u64,
    /// Triangles reported by the paper for the original dataset.
    pub paper_triangles: usize,
    /// Seconds for the node-privacy run (prepare + releases).
    pub node_seconds: f64,
    /// Seconds for the edge-privacy run.
    pub edge_seconds: f64,
    /// Median relative error, recursive mechanism with node privacy.
    pub err_recursive_node: f64,
    /// Median relative error, recursive mechanism with edge privacy.
    pub err_recursive_edge: f64,
    /// Median relative error, smooth-sensitivity baseline.
    pub err_local_sensitivity: f64,
    /// Median relative error, RHMS baseline.
    pub err_rhms: f64,
}

/// Runs triangle counting on every dataset stand-in.
pub fn run(options: &CliOptions) -> Vec<RealGraphResult> {
    let trials = options.trials();
    let epsilon = 0.5;
    let mut out = Vec::new();
    for spec in PAPER_REAL_GRAPHS {
        let divisor = options.scale.real_graph_divisor(spec.nodes);
        let mut rng = StdRng::seed_from_u64(options.seed.wrapping_add(spec.nodes as u64));
        let graph = real_world_standin(spec, divisor, &mut rng);

        let watch = rmdp_observe::Stopwatch::start();
        let node = run_recursive(
            &graph,
            QueryKind::Triangle,
            PrivacyUnit::Node,
            epsilon,
            trials,
            &mut rng,
        );
        let node_seconds = watch.elapsed_seconds();

        let watch = rmdp_observe::Stopwatch::start();
        let edge = run_recursive(
            &graph,
            QueryKind::Triangle,
            PrivacyUnit::Edge,
            epsilon,
            trials,
            &mut rng,
        );
        let edge_seconds = watch.elapsed_seconds();

        let local = QueryKind::Triangle.local_sensitivity_baseline(epsilon, 0.1);
        let local_outcome = run_baseline(local.as_ref(), &graph, trials, &mut rng);
        let rhms = QueryKind::Triangle.rhms_baseline(epsilon);
        let rhms_outcome = run_baseline(rhms.as_ref(), &graph, trials, &mut rng);

        out.push(RealGraphResult {
            name: spec.name,
            nodes: graph.num_nodes(),
            edges: graph.num_edges(),
            triangles: triangle_count(&graph),
            paper_triangles: spec.triangles,
            node_seconds,
            edge_seconds,
            err_recursive_node: node.map(|o| o.median_relative_error).unwrap_or(f64::NAN),
            err_recursive_edge: edge.map(|o| o.median_relative_error).unwrap_or(f64::NAN),
            err_local_sensitivity: local_outcome.median_relative_error,
            err_rhms: rhms_outcome.median_relative_error,
        });
    }
    out
}

/// The Fig. 6 table: sizes and running times.
pub fn size_table(results: &[RealGraphResult], scale_note: &str) -> Table {
    let mut table = Table::new(
        &format!("Figure 6: graph sizes and running time ({scale_note})"),
        &[
            "graph",
            "|V|",
            "|E|",
            "triangles",
            "paper triangles",
            "time (node)",
            "time (edge)",
        ],
    );
    for r in results {
        table.push_row(vec![
            r.name.to_owned(),
            r.nodes.to_string(),
            r.edges.to_string(),
            r.triangles.to_string(),
            r.paper_triangles.to_string(),
            fmt_secs(r.node_seconds),
            fmt_secs(r.edge_seconds),
        ]);
    }
    table
}

/// The Fig. 7 table: median relative error by mechanism.
pub fn error_table(results: &[RealGraphResult]) -> Table {
    let mut table = Table::new(
        "Figure 7: median relative error for triangle counting",
        &[
            "graph",
            "recursive (node)",
            "recursive (edge)",
            "local sensitivity",
            "RHMS",
        ],
    );
    for r in results {
        table.push_row(vec![
            r.name.to_owned(),
            fmt_float(r.err_recursive_node),
            fmt_float(r.err_recursive_edge),
            fmt_float(r.err_local_sensitivity),
            fmt_float(r.err_rhms),
        ]);
    }
    table
}

/// The qualitative expectation from the paper.
pub fn paper_expectation() -> &'static str {
    "Paper expectation (Fig. 6/7): the recursive mechanism with edge privacy is the most accurate \
     on every dataset; node privacy is close behind on triangle-rich graphs (netscience, ca-GrQc, \
     ca-HepTh) and worse on triangle-poor power grids; RHMS errors are orders of magnitude larger. \
     Running time grows with the number of triangles (the paper reports minutes to hours at full \
     scale)."
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_from_synthetic_results() {
        let results = vec![RealGraphResult {
            name: "netscience",
            nodes: 397,
            edges: 685,
            triangles: 940,
            paper_triangles: 3764,
            node_seconds: 1.5,
            edge_seconds: 2.0,
            err_recursive_node: 0.4,
            err_recursive_edge: 0.02,
            err_local_sensitivity: 0.2,
            err_rhms: 900.0,
        }];
        let t1 = size_table(&results, "quick scale");
        let t2 = error_table(&results);
        assert_eq!(t1.len(), 1);
        assert_eq!(t2.len(), 1);
        assert!(t1.render().contains("netscience"));
        assert!(t2.render().contains("900.00"));
        assert!(!paper_expectation().is_empty());
    }
}
