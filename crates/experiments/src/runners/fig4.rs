//! Fig. 4: median relative error of the four mechanisms.
//!
//! * Panel (a): error vs number of nodes (avg degree 10).
//! * Panel (b): error vs average degree (|V| = 200 in the paper).
//! * Panel (c): error vs ε (|V| = 200, avg degree 10).
//!
//! Each point pools `graphs_per_point` random G(n, p) graphs and `trials`
//! releases per graph; the reported value is the median relative error, the
//! metric used throughout the paper's evaluation.

use crate::cli::CliOptions;
use crate::report::{fmt_float, Table};
use crate::runners::{pool_medians, run_baseline, run_recursive, QueryKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rmdp_core::subgraph::PrivacyUnit;
use rmdp_graph::generators;

/// Which sweep of Fig. 4 to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Panel {
    /// Error vs number of nodes.
    Nodes,
    /// Error vs average degree.
    AvgDegree,
    /// Error vs ε.
    Epsilon,
}

impl Panel {
    /// Parses the `--panel` flag value.
    pub fn parse(s: &str) -> Result<Panel, String> {
        match s.to_ascii_lowercase().as_str() {
            "a" | "nodes" => Ok(Panel::Nodes),
            "b" | "degree" | "avgdeg" => Ok(Panel::AvgDegree),
            "c" | "epsilon" | "eps" => Ok(Panel::Epsilon),
            other => Err(format!("unknown panel '{other}' (expected a|b|c)")),
        }
    }

    /// The x-axis label.
    pub fn x_label(self) -> &'static str {
        match self {
            Panel::Nodes => "nodes",
            Panel::AvgDegree => "avg degree",
            Panel::Epsilon => "epsilon",
        }
    }
}

/// One point of one query's sweep.
#[derive(Clone, Debug)]
pub struct Fig4Point {
    /// Query family.
    pub query: &'static str,
    /// x-axis value (nodes, degree or ε).
    pub x: f64,
    /// Median relative error of the recursive mechanism, node privacy.
    pub recursive_node: f64,
    /// Median relative error of the recursive mechanism, edge privacy.
    pub recursive_edge: f64,
    /// Median relative error of the local-sensitivity baseline.
    pub local_sensitivity: f64,
    /// Median relative error of the RHMS baseline.
    pub rhms: f64,
    /// Mean true count across the generated graphs (context for the reader).
    pub true_count: f64,
}

/// Runs one panel of Fig. 4 and returns the collected points.
pub fn run_panel(panel: Panel, options: &CliOptions) -> Vec<Fig4Point> {
    let scale = options.scale;
    let trials = options.trials();
    let delta = 0.1; // δ = γ = 0.1, the paper's setting for the baselines.
    let mut points = Vec::new();

    for query in QueryKind::all() {
        let xs: Vec<f64> = match panel {
            Panel::Nodes => {
                let grid = if query.is_star() {
                    scale.fig4_star_nodes_grid()
                } else {
                    scale.fig4_nodes_grid()
                };
                grid.into_iter().map(|n| n as f64).collect()
            }
            Panel::AvgDegree => scale.fig4b_degree_grid(),
            Panel::Epsilon => scale.fig4c_epsilon_grid(),
        };

        for &x in &xs {
            let (nodes, avgdeg, epsilon) = match panel {
                Panel::Nodes => (x as usize, scale.fig4_avg_degree(query.is_star()), 0.5),
                Panel::AvgDegree => (scale.fig4bc_nodes(query.is_star()), x, 0.5),
                Panel::Epsilon => (
                    scale.fig4bc_nodes(query.is_star()),
                    scale.fig4_avg_degree(query.is_star()),
                    x,
                ),
            };

            let mut node_errs = Vec::new();
            let mut edge_errs = Vec::new();
            let mut local_errs = Vec::new();
            let mut rhms_errs = Vec::new();
            let mut counts = Vec::new();

            for graph_idx in 0..scale.graphs_per_point() {
                let seed = options
                    .seed
                    .wrapping_add((x * 1000.0) as u64)
                    .wrapping_mul(31)
                    .wrapping_add(graph_idx as u64)
                    .wrapping_add(query.name().len() as u64);
                let mut rng = StdRng::seed_from_u64(seed);
                let graph = generators::gnp_average_degree(nodes, avgdeg, &mut rng);

                if let Ok(outcome) =
                    run_recursive(&graph, query, PrivacyUnit::Node, epsilon, trials, &mut rng)
                {
                    node_errs.push(outcome.median_relative_error);
                    counts.push(outcome.true_count);
                }
                if let Ok(outcome) =
                    run_recursive(&graph, query, PrivacyUnit::Edge, epsilon, trials, &mut rng)
                {
                    edge_errs.push(outcome.median_relative_error);
                }
                let local = query.local_sensitivity_baseline(epsilon, delta);
                local_errs.push(
                    run_baseline(local.as_ref(), &graph, trials, &mut rng).median_relative_error,
                );
                let rhms = query.rhms_baseline(epsilon);
                rhms_errs.push(
                    run_baseline(rhms.as_ref(), &graph, trials, &mut rng).median_relative_error,
                );
            }

            points.push(Fig4Point {
                query: query.name(),
                x,
                recursive_node: pool_medians(&node_errs),
                recursive_edge: pool_medians(&edge_errs),
                local_sensitivity: pool_medians(&local_errs),
                rhms: pool_medians(&rhms_errs),
                true_count: if counts.is_empty() {
                    0.0
                } else {
                    counts.iter().sum::<f64>() / counts.len() as f64
                },
            });
        }
    }
    points
}

/// Renders the points as the table the binary prints.
pub fn to_table(panel: Panel, points: &[Fig4Point]) -> Table {
    let mut table = Table::new(
        &format!("Figure 4 ({}): median relative error", panel.x_label()),
        &[
            "query",
            panel.x_label(),
            "recursive (node)",
            "recursive (edge)",
            "local sensitivity",
            "RHMS",
            "true count",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.query.to_owned(),
            fmt_float(p.x),
            fmt_float(p.recursive_node),
            fmt_float(p.recursive_edge),
            fmt_float(p.local_sensitivity),
            fmt_float(p.rhms),
            fmt_float(p.true_count),
        ]);
    }
    table
}

/// The qualitative expectation from the paper, printed next to the table so
/// the reader can compare shapes at a glance.
pub fn paper_expectation() -> &'static str {
    "Paper expectation (Fig. 4): recursive (edge) is the most accurate curve for every query; \
     RHMS is off the chart for triangle and 2-triangle; the local-sensitivity baselines degrade \
     on sparse graphs; recursive (node) is noisier than edge privacy — especially for 2-star and \
     2-triangle — but improves as the graph grows."
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn panel_parsing() {
        assert_eq!(Panel::parse("a").unwrap(), Panel::Nodes);
        assert_eq!(Panel::parse("B").unwrap(), Panel::AvgDegree);
        assert_eq!(Panel::parse("epsilon").unwrap(), Panel::Epsilon);
        assert!(Panel::parse("z").is_err());
    }

    #[test]
    fn table_rendering_covers_every_point() {
        let points = vec![
            Fig4Point {
                query: "triangle",
                x: 20.0,
                recursive_node: 0.8,
                recursive_edge: 0.05,
                local_sensitivity: 0.4,
                rhms: 300.0,
                true_count: 17.0,
            },
            Fig4Point {
                query: "2-star",
                x: 20.0,
                recursive_node: 1.2,
                recursive_edge: 0.02,
                local_sensitivity: 0.03,
                rhms: 0.4,
                true_count: 310.0,
            },
        ];
        let table = to_table(Panel::Nodes, &points);
        assert_eq!(table.len(), points.len());
        let rendered = table.render();
        assert!(rendered.contains("triangle"));
        assert!(rendered.contains("2-star"));
        assert!(!paper_expectation().is_empty());
    }

    /// Full (quick-scale) sweep of the ε panel. Expensive even at quick
    /// scale, so it only runs when explicitly requested:
    /// `cargo test -p rmdp-experiments --release -- --ignored fig4`.
    #[test]
    #[ignore = "runs the full quick-scale ε sweep; use --ignored to include it"]
    fn quick_scale_epsilon_panel_end_to_end() {
        let options = CliOptions {
            scale: Scale::Quick,
            trials: Some(3),
            seed: 7,
            ..CliOptions::default()
        };
        let points = run_panel(Panel::Epsilon, &options);
        assert_eq!(points.len(), 3 * Scale::Quick.fig4c_epsilon_grid().len());
        for p in &points {
            assert!(p.recursive_edge.is_finite());
            assert!(p.recursive_node.is_finite());
            assert!(p.local_sensitivity.is_finite());
            assert!(p.rhms.is_finite());
        }
    }
}
