//! Fig. 5: running time of the recursive mechanism vs graph size.
//!
//! The paper plots the wall-clock time of the mechanism for triangle, 2-star
//! and 2-triangle counting under node and edge privacy on G(n, p) graphs with
//! average degree 10 and 20–200 nodes. We time the preparation (pattern
//! matching, K-relation construction, the Δ binary search) plus one release,
//! which is the unit of work the paper reports.

use crate::cli::CliOptions;
use crate::report::{fmt_float, fmt_secs, Table};
use crate::runners::{run_recursive, QueryKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rmdp_core::subgraph::PrivacyUnit;
use rmdp_graph::generators;

/// One timing measurement.
#[derive(Clone, Debug)]
pub struct Fig5Point {
    /// Query family.
    pub query: &'static str,
    /// Privacy unit ("node" / "edge").
    pub privacy: &'static str,
    /// Number of nodes.
    pub nodes: usize,
    /// Support size of the K-relation (true count), for context.
    pub true_count: f64,
    /// Seconds for preparation plus one release.
    pub seconds: f64,
}

/// Runs the timing sweep.
pub fn run(options: &CliOptions) -> Vec<Fig5Point> {
    let scale = options.scale;
    let mut points = Vec::new();
    for query in QueryKind::all() {
        let grid = if query.is_star() {
            scale.fig4_star_nodes_grid()
        } else {
            scale.fig4_nodes_grid()
        };
        let avgdeg = scale.fig4_avg_degree(query.is_star());
        for &nodes in &grid {
            let mut rng = StdRng::seed_from_u64(options.seed.wrapping_add(nodes as u64));
            let graph = generators::gnp_average_degree(nodes, avgdeg, &mut rng);
            for (privacy, label) in [(PrivacyUnit::Node, "node"), (PrivacyUnit::Edge, "edge")] {
                let watch = rmdp_observe::Stopwatch::start();
                let outcome = run_recursive(&graph, query, privacy, 0.5, 1, &mut rng);
                let seconds = watch.elapsed_seconds();
                if let Ok(outcome) = outcome {
                    points.push(Fig5Point {
                        query: query.name(),
                        privacy: label,
                        nodes,
                        true_count: outcome.true_count,
                        seconds,
                    });
                }
            }
        }
    }
    points
}

/// Renders the timing table.
pub fn to_table(points: &[Fig5Point]) -> Table {
    let mut table = Table::new(
        "Figure 5: running time of the recursive mechanism (prepare + one release)",
        &["query", "privacy", "nodes", "true count", "time"],
    );
    for p in points {
        table.push_row(vec![
            p.query.to_owned(),
            p.privacy.to_owned(),
            p.nodes.to_string(),
            fmt_float(p.true_count),
            fmt_secs(p.seconds),
        ]);
    }
    table
}

/// The qualitative expectation from the paper.
pub fn paper_expectation() -> &'static str {
    "Paper expectation (Fig. 5): the cost grows polynomially with the number of matched \
     subgraphs; triangle/2-triangle counting gets cheaper as sparse graphs grow (fewer matches \
     per node at fixed average degree), while 2-star counting grows with the graph because the \
     number of 2-stars is proportional to the node count."
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering() {
        let points = vec![Fig5Point {
            query: "triangle",
            privacy: "node",
            nodes: 40,
            true_count: 55.0,
            seconds: 0.21,
        }];
        let t = to_table(&points);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("210.0ms"));
        assert!(!paper_expectation().is_empty());
    }
}
