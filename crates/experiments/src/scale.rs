//! Scale presets for the experiment grids.
//!
//! The paper's largest configurations (e.g. 2-star counting at |V| = 200 and
//! the ca-GrQc triangle run) took hours on the authors' machine; the default
//! `quick` preset shrinks every grid so the entire suite completes in
//! minutes while preserving the shape of every curve. `paper` matches the
//! published parameters; `full` extends them slightly for headroom.

use std::str::FromStr;

/// How large the experiment grids should be.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Scale {
    /// Small grids, minutes for the full suite (default).
    #[default]
    Quick,
    /// The parameters used in the paper.
    Paper,
    /// The paper's parameters with extra headroom.
    Full,
}

impl FromStr for Scale {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "quick" => Ok(Scale::Quick),
            "paper" => Ok(Scale::Paper),
            "full" => Ok(Scale::Full),
            other => Err(format!(
                "unknown scale '{other}' (expected quick|paper|full)"
            )),
        }
    }
}

impl Scale {
    /// Node-count grid for Fig. 4(a) / Fig. 5 for triangle and 2-triangle
    /// queries (the paper sweeps 20..200 at average degree 10).
    pub fn fig4_nodes_grid(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![20, 40, 60, 80, 100],
            Scale::Paper => (1..=10).map(|i| i * 20).collect(),
            Scale::Full => (1..=12).map(|i| i * 20).collect(),
        }
    }

    /// Node-count grid for 2-star queries. The 2-star K-relation has
    /// `Σ C(deg, 2)` tuples, so its LPs are the largest of the evaluation;
    /// the quick preset uses a reduced grid and average degree (documented in
    /// EXPERIMENTS.md).
    pub fn fig4_star_nodes_grid(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![20, 30, 40],
            Scale::Paper => (1..=10).map(|i| i * 20).collect(),
            Scale::Full => (1..=10).map(|i| i * 20).collect(),
        }
    }

    /// Average degree used for Fig. 4(a)/(c) and Fig. 5.
    pub fn fig4_avg_degree(self, is_star: bool) -> f64 {
        match self {
            Scale::Quick => {
                if is_star {
                    6.0
                } else {
                    10.0
                }
            }
            Scale::Paper | Scale::Full => 10.0,
        }
    }

    /// Average-degree grid for Fig. 4(b) (the paper sweeps 2..16 at
    /// |V| = 200).
    pub fn fig4b_degree_grid(self) -> Vec<f64> {
        match self {
            Scale::Quick => vec![2.0, 4.0, 6.0, 8.0],
            Scale::Paper | Scale::Full => (1..=8).map(|i| (2 * i) as f64).collect(),
        }
    }

    /// Node count for Fig. 4(b)/(c) (the paper uses 200).
    pub fn fig4bc_nodes(self, is_star: bool) -> usize {
        match self {
            Scale::Quick => {
                if is_star {
                    40
                } else {
                    80
                }
            }
            Scale::Paper | Scale::Full => 200,
        }
    }

    /// ε grid for Fig. 4(c) (the paper sweeps 0.1..0.5).
    pub fn fig4c_epsilon_grid(self) -> Vec<f64> {
        vec![0.1, 0.2, 0.3, 0.4, 0.5]
    }

    /// Number of random graphs generated per grid point.
    pub fn graphs_per_point(self) -> usize {
        match self {
            Scale::Quick => 2,
            Scale::Paper => 5,
            Scale::Full => 10,
        }
    }

    /// Number of mechanism releases per graph (the median relative error is
    /// taken over graphs × releases).
    pub fn default_trials(self) -> usize {
        match self {
            Scale::Quick => 15,
            Scale::Paper => 50,
            Scale::Full => 100,
        }
    }

    /// Scale divisor applied to the real-graph stand-ins of Fig. 6/7 (1 means
    /// original sizes).
    pub fn real_graph_divisor(self, original_nodes: usize) -> usize {
        match self {
            Scale::Quick => (original_nodes / 70).max(1),
            Scale::Paper | Scale::Full => 1,
        }
    }

    /// Support size |supp(R)| for the synthetic K-relation experiments
    /// (Fig. 8 uses 1000 in the paper).
    pub fn fig8_support(self) -> usize {
        match self {
            Scale::Quick => 120,
            Scale::Paper => 1000,
            Scale::Full => 1000,
        }
    }

    /// Clause-count grid for Fig. 8 (the paper sweeps 2..10).
    pub fn fig8_clause_grid(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![2, 3, 4, 5],
            Scale::Paper | Scale::Full => (1..=5).map(|i| 2 * i).collect(),
        }
    }

    /// Support-size grid for Fig. 9 (the paper sweeps up to 1000).
    pub fn fig9_support_grid(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![50, 100, 150, 200],
            Scale::Paper | Scale::Full => (1..=5).map(|i| i * 200).collect(),
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
            Scale::Full => "full",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsing_accepts_all_names() {
        assert_eq!("quick".parse::<Scale>().unwrap(), Scale::Quick);
        assert_eq!("PAPER".parse::<Scale>().unwrap(), Scale::Paper);
        assert_eq!("full".parse::<Scale>().unwrap(), Scale::Full);
        assert!("huge".parse::<Scale>().is_err());
    }

    #[test]
    fn paper_grids_match_the_publication() {
        let s = Scale::Paper;
        assert_eq!(s.fig4_nodes_grid().last(), Some(&200));
        assert_eq!(
            s.fig4b_degree_grid(),
            vec![2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0]
        );
        assert_eq!(s.fig4bc_nodes(false), 200);
        assert_eq!(s.fig8_support(), 1000);
        assert_eq!(s.fig8_clause_grid().last(), Some(&10));
        assert_eq!(s.fig4c_epsilon_grid(), vec![0.1, 0.2, 0.3, 0.4, 0.5]);
    }

    #[test]
    fn quick_grids_are_strictly_smaller() {
        let q = Scale::Quick;
        let p = Scale::Paper;
        assert!(q.fig4_nodes_grid().len() < p.fig4_nodes_grid().len());
        assert!(q.fig8_support() < p.fig8_support());
        assert!(q.default_trials() < p.default_trials());
        assert!(q.real_graph_divisor(5000) > 1);
        assert_eq!(p.real_graph_divisor(5000), 1);
    }
}
