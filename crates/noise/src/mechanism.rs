//! The classical global-sensitivity Laplace mechanism.

use crate::laplace::sample_laplace;
use rand::Rng;

/// The Laplace mechanism of Dwork et al.: releases `q(D) + Lap(GS_q / ε)`.
///
/// Only applicable when the global sensitivity `GS_q` is finite — which is
/// exactly what fails for unrestricted joins and node-privacy subgraph
/// counting, motivating the recursive mechanism.
#[derive(Clone, Copy, Debug)]
pub struct LaplaceMechanism {
    /// Global sensitivity of the query.
    pub sensitivity: f64,
    /// Privacy parameter ε.
    pub epsilon: f64,
}

impl LaplaceMechanism {
    /// Creates the mechanism; panics on non-positive ε or negative
    /// sensitivity.
    pub fn new(sensitivity: f64, epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        assert!(sensitivity >= 0.0, "sensitivity must be nonnegative");
        LaplaceMechanism {
            sensitivity,
            epsilon,
        }
    }

    /// The noise scale `GS_q / ε`.
    pub fn scale(&self) -> f64 {
        self.sensitivity / self.epsilon
    }

    /// Releases a noisy answer for one query evaluation.
    pub fn release<R: Rng + ?Sized>(&self, true_answer: f64, rng: &mut R) -> f64 {
        true_answer + sample_laplace(self.scale(), rng)
    }

    /// Releases a noisy answer for a vector-valued query whose L1 global
    /// sensitivity is `self.sensitivity` (i.i.d. noise per coordinate).
    pub fn release_vec<R: Rng + ?Sized>(&self, true_answers: &[f64], rng: &mut R) -> Vec<f64> {
        true_answers
            .iter()
            .map(|&a| a + sample_laplace(self.scale(), rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scale_is_sensitivity_over_epsilon() {
        let m = LaplaceMechanism::new(3.0, 0.5);
        assert!((m.scale() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn release_concentrates_around_truth() {
        let m = LaplaceMechanism::new(1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(31);
        let answers: Vec<f64> = (0..50_000).map(|_| m.release(42.0, &mut rng)).collect();
        let mean = answers.iter().sum::<f64>() / answers.len() as f64;
        assert!((mean - 42.0).abs() < 0.05, "{mean}");
    }

    #[test]
    fn vector_release_preserves_length() {
        let m = LaplaceMechanism::new(1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(31);
        let out = m.release_vec(&[1.0, 2.0, 3.0], &mut rng);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn empirical_privacy_ratio_on_neighbouring_counts() {
        // Histogram test of the ε-DP inequality for a count query with
        // sensitivity 1: outputs on D (true = 10) vs D' (true = 11).
        let epsilon = 0.8;
        let m = LaplaceMechanism::new(1.0, epsilon);
        let mut rng = StdRng::seed_from_u64(99);
        let n = 400_000;
        let bucket = |x: f64| (x.round() as i64).clamp(0, 21);
        let mut hist_d = [0.0f64; 22];
        let mut hist_dp = [0.0f64; 22];
        for _ in 0..n {
            hist_d[bucket(m.release(10.0, &mut rng)) as usize] += 1.0;
            hist_dp[bucket(m.release(11.0, &mut rng)) as usize] += 1.0;
        }
        for i in 0..22 {
            let p = hist_d[i] / n as f64;
            let q = hist_dp[i] / n as f64;
            if p > 5e-3 && q > 5e-3 {
                let ratio = p / q;
                assert!(
                    ratio <= (epsilon.exp()) * 1.15 && ratio >= (-epsilon).exp() / 1.15,
                    "bucket {i}: ratio {ratio} violates e^±ε"
                );
            }
        }
    }
}
