//! Differential-privacy noise primitives.
//!
//! This crate collects the standard machinery the recursive mechanism and the
//! baseline mechanisms are built from (paper Sec. 2.1–2.3):
//!
//! * [`laplace`] / [`cauchy`] / [`geometric`] — noise samplers.
//! * [`budget::PrivacyBudget`] — (ε, δ) bookkeeping with sequential
//!   composition.
//! * [`accuracy`] — the (ε, δ)-accuracy notion of Def. 2 and the tail bounds
//!   of the Laplace distribution.
//! * [`mechanism::LaplaceMechanism`] — the global-sensitivity Laplace
//!   mechanism of Dwork et al.
//! * [`smooth`] — the smooth-sensitivity framework of Nissim, Raskhodnikova
//!   and Smith, used by the local-sensitivity baselines of the evaluation.

#![deny(missing_docs)]

pub mod accuracy;
pub mod budget;
pub mod cauchy;
pub mod geometric;
pub mod laplace;
pub mod mechanism;
pub mod registry;
pub mod smooth;

pub use budget::{BudgetAccountant, BudgetExhausted, GroupBudgetPolicy, PrivacyBudget};
pub use laplace::sample_laplace;
pub use mechanism::LaplaceMechanism;
pub use registry::{BudgetRegistry, SharedAccountant};
