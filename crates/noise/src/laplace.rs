//! Laplace noise.
//!
//! `Lap(b)` has density `f(y) = exp(−|y|/b) / (2b)` (paper Eq. 4). It is the
//! noise distribution of both the classical Laplace mechanism and the final
//! release step of the recursive mechanism (`X̂ = X + Lap(Δ̂/ε₂)`).

use rand::Rng;

/// Samples `Lap(scale)` via inverse-CDF sampling.
///
/// `scale = 0` returns exactly `0`, which is convenient for "no noise"
/// debugging runs.
pub fn sample_laplace<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> f64 {
    assert!(
        scale >= 0.0 && scale.is_finite(),
        "invalid Laplace scale {scale}"
    );
    // lint:allow(float-eq): exact zero-scale short-circuit — zero sensitivity must add exactly zero noise, and the guard above rejects negatives
    if scale == 0.0 {
        return 0.0;
    }
    // u uniform in (-0.5, 0.5]; inverse CDF of the Laplace distribution.
    let u: f64 = rng.gen::<f64>() - 0.5;
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// Density of `Lap(scale)` at `y`.
pub fn laplace_pdf(y: f64, scale: f64) -> f64 {
    (-(y.abs()) / scale).exp() / (2.0 * scale)
}

/// `Pr[|Lap(scale)| > t]` — the two-sided tail used in accuracy statements.
pub fn laplace_tail(t: f64, scale: f64) -> f64 {
    if t <= 0.0 {
        1.0
    } else {
        (-t / scale).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_scale_is_noiseless() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_laplace(0.0, &mut rng), 0.0);
    }

    #[test]
    fn empirical_mean_and_spread_match_theory() {
        let mut rng = StdRng::seed_from_u64(7);
        let scale = 2.0;
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_laplace(scale, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let mean_abs = samples.iter().map(|x| x.abs()).sum::<f64>() / n as f64;
        // E[Lap(b)] = 0, E[|Lap(b)|] = b.
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((mean_abs - scale).abs() < 0.05, "mean abs {mean_abs}");
    }

    #[test]
    fn empirical_tail_matches_formula() {
        let mut rng = StdRng::seed_from_u64(13);
        let scale = 1.5;
        let t = 3.0;
        let n = 100_000;
        let exceed = (0..n)
            .filter(|_| sample_laplace(scale, &mut rng).abs() > t)
            .count() as f64
            / n as f64;
        let expected = laplace_tail(t, scale);
        assert!((exceed - expected).abs() < 0.01, "{exceed} vs {expected}");
    }

    #[test]
    fn pdf_is_symmetric_and_normalised_roughly() {
        let scale = 0.7;
        assert!((laplace_pdf(1.0, scale) - laplace_pdf(-1.0, scale)).abs() < 1e-15);
        // Trapezoid integration over a wide range ≈ 1.
        let step = 0.001;
        let integral: f64 = (-20_000..20_000)
            .map(|i| laplace_pdf(i as f64 * step, scale) * step)
            .sum();
        assert!((integral - 1.0).abs() < 1e-3, "{integral}");
    }

    #[test]
    #[should_panic(expected = "invalid Laplace scale")]
    fn negative_scale_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = sample_laplace(-1.0, &mut rng);
    }
}
