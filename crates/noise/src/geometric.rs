//! Two-sided geometric ("discrete Laplace") noise.
//!
//! Useful when the released statistic is integral (e.g. unweighted subgraph
//! counts) and an integer-valued release is preferred.

use rand::Rng;

/// Samples the two-sided geometric distribution with parameter
/// `alpha = exp(−ε / sensitivity)`:
/// `Pr[Z = z] ∝ alpha^{|z|}`.
pub fn sample_two_sided_geometric<R: Rng + ?Sized>(
    epsilon: f64,
    sensitivity: f64,
    rng: &mut R,
) -> i64 {
    assert!(
        epsilon > 0.0 && sensitivity >= 0.0,
        "invalid geometric parameters"
    );
    if sensitivity == 0.0 {
        return 0;
    }
    let alpha = (-epsilon / sensitivity).exp();
    // Difference of two geometric variables with success probability 1 − α.
    let g1 = sample_geometric(1.0 - alpha, rng);
    let g2 = sample_geometric(1.0 - alpha, rng);
    g1 - g2
}

fn sample_geometric<R: Rng + ?Sized>(p: f64, rng: &mut R) -> i64 {
    // Number of failures before the first success.
    let u: f64 = rng.gen::<f64>();
    if p >= 1.0 {
        return 0;
    }
    (u.ln() / (1.0 - p).ln()).floor() as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_sensitivity_is_noiseless() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_two_sided_geometric(0.5, 0.0, &mut rng), 0);
    }

    #[test]
    fn distribution_is_centred_and_symmetric() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let samples: Vec<i64> = (0..n)
            .map(|_| sample_two_sided_geometric(1.0, 1.0, &mut rng))
            .collect();
        let mean = samples.iter().sum::<i64>() as f64 / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        let pos = samples.iter().filter(|&&z| z > 0).count() as f64;
        let neg = samples.iter().filter(|&&z| z < 0).count() as f64;
        assert!((pos - neg).abs() / n as f64 <= 0.02);
    }

    #[test]
    fn smaller_epsilon_means_wider_noise() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 20_000;
        let spread = |eps: f64, rng: &mut StdRng| {
            (0..n)
                .map(|_| sample_two_sided_geometric(eps, 1.0, rng).abs())
                .sum::<i64>() as f64
                / n as f64
        };
        let wide = spread(0.1, &mut rng);
        let narrow = spread(2.0, &mut rng);
        assert!(wide > 3.0 * narrow, "wide {wide}, narrow {narrow}");
    }
}
