//! Two-sided geometric ("discrete Laplace") noise.
//!
//! Useful when the released statistic is integral (e.g. unweighted subgraph
//! counts) and an integer-valued release is preferred.

use rand::Rng;

/// Samples the two-sided geometric distribution with parameter
/// `alpha = exp(−ε / sensitivity)`:
/// `Pr[Z = z] ∝ alpha^{|z|}`.
///
/// The inversion works in log space throughout: the geometric draws divide
/// by `ln α = −ε/sensitivity` **directly**, never round-tripping through
/// `alpha = exp(·)` and back. The round trip is the classical failure mode
/// at small `ε/sensitivity`: `exp(−1e-17)` rounds to exactly `1.0`, the
/// recovered `ln α` underflows to `0`, and the draw becomes `±∞` — which a
/// saturating `as i64` cast turns into `i64::MAX`, a catastrophically
/// corrupted release. Draws whose *true* magnitude exceeds `i64::MAX`
/// (noise scale beyond `~9.2e18`, i.e. parameters with no usable signal
/// left) are clamped to `i64::MAX` explicitly rather than passed through
/// undefined float-to-int territory.
pub fn sample_two_sided_geometric<R: Rng + ?Sized>(
    epsilon: f64,
    sensitivity: f64,
    rng: &mut R,
) -> i64 {
    assert!(
        epsilon > 0.0 && sensitivity >= 0.0,
        "invalid geometric parameters"
    );
    // lint:allow(float-eq): exact zero-sensitivity short-circuit — the mechanism must add exactly zero noise, and the guard above rejects negatives
    if sensitivity == 0.0 {
        return 0;
    }
    let ln_alpha = -epsilon / sensitivity;
    // Difference of two geometric variables with success probability 1 − α.
    let g1 = sample_geometric_ln(ln_alpha, rng);
    let g2 = sample_geometric_ln(ln_alpha, rng);
    // Both draws are in [0, i64::MAX], so the difference cannot overflow.
    g1 - g2
}

/// Number of failures before the first success of a Bernoulli(1 − α) trial,
/// parameterised by `ln α` (exact for `α = exp(−ε/s)`: `ln α = −ε/s`).
fn sample_geometric_ln<R: Rng + ?Sized>(ln_alpha: f64, rng: &mut R) -> i64 {
    debug_assert!(ln_alpha < 0.0, "ln α must be negative, got {ln_alpha}");
    // `gen::<f64>()` is uniform on [0, 1); reject the single point u = 0
    // whose logarithm is −∞ (it would saturate the draw all by itself).
    let u: f64 = loop {
        let u = rng.gen::<f64>();
        if u > 0.0 {
            break u;
        }
    };
    let draw = (u.ln() / ln_alpha).floor();
    if draw >= i64::MAX as f64 {
        i64::MAX
    } else {
        // lint:allow(float-cast): draw is integral by construction (floor above) and the preceding branch saturates at i64::MAX, so this cast is exact
        draw as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_sensitivity_is_noiseless() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_two_sided_geometric(0.5, 0.0, &mut rng), 0);
    }

    #[test]
    fn distribution_is_centred_and_symmetric() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let samples: Vec<i64> = (0..n)
            .map(|_| sample_two_sided_geometric(1.0, 1.0, &mut rng))
            .collect();
        let mean = samples.iter().sum::<i64>() as f64 / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        let pos = samples.iter().filter(|&&z| z > 0).count() as f64;
        let neg = samples.iter().filter(|&&z| z < 0).count() as f64;
        assert!((pos - neg).abs() / n as f64 <= 0.02);
    }

    #[test]
    fn extreme_epsilon_draws_are_finite_and_correctly_scaled() {
        // Regression: the old inversion computed `(1 − p).ln()` with
        // `p = 1 − exp(−ε/s)`; for ε/s ≲ 1e-16 the exponential rounds to 1,
        // p underflows to 0, the denominator becomes ln(1) = 0 and every
        // draw saturates to ±i64::MAX. In log space the denominator is
        // −ε/s exactly and the draws stay finite and correctly distributed.
        let mut rng = StdRng::seed_from_u64(5);
        let (eps, sens) = (1e-9, 1.0);
        let scale = sens / eps; // E|Z| ≈ 2α/(1−α²) ≈ s/ε as α → 1
        let n = 4000;
        let samples: Vec<i64> = (0..n)
            .map(|_| sample_two_sided_geometric(eps, sens, &mut rng))
            .collect();
        for &z in &samples {
            assert!(z != i64::MAX && z != i64::MIN, "saturated draw {z}");
        }
        let mean_abs = samples.iter().map(|z| z.unsigned_abs() as f64).sum::<f64>() / n as f64;
        assert!(
            mean_abs > 0.2 * scale && mean_abs < 5.0 * scale,
            "mean |Z| = {mean_abs:e}, expected ≈ {scale:e}"
        );
        // Symmetric around zero even at this scale.
        let pos = samples.iter().filter(|&&z| z > 0).count() as f64;
        let neg = samples.iter().filter(|&&z| z < 0).count() as f64;
        assert!((pos - neg).abs() / n as f64 <= 0.05, "pos {pos}, neg {neg}");

        // Even past the old catastrophic threshold (ε/s well below an ulp
        // of 1.0) the draws remain finite and huge-but-representable.
        for _ in 0..200 {
            let z = sample_two_sided_geometric(1e-15, 1.0, &mut rng);
            assert!(z != i64::MAX && z != i64::MIN, "saturated draw {z}");
            assert!(z.unsigned_abs() < 1u64 << 62);
        }
    }

    #[test]
    fn large_sensitivity_behaves_like_small_epsilon() {
        // ε/sensitivity is the only parameter that matters; a huge
        // sensitivity must not corrupt the draw any more than a tiny ε.
        let mut rng = StdRng::seed_from_u64(9);
        let n = 2000;
        let scale = 1e6 / 0.001; // s/ε = 1e9
        let mean_abs = (0..n)
            .map(|_| sample_two_sided_geometric(0.001, 1e6, &mut rng).unsigned_abs() as f64)
            .sum::<f64>()
            / n as f64;
        assert!(
            mean_abs > 0.2 * scale && mean_abs < 5.0 * scale,
            "mean |Z| = {mean_abs:e}, expected ≈ {scale:e}"
        );
    }

    #[test]
    fn smaller_epsilon_means_wider_noise() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 20_000;
        let spread = |eps: f64, rng: &mut StdRng| {
            (0..n)
                .map(|_| sample_two_sided_geometric(eps, 1.0, rng).abs())
                .sum::<i64>() as f64
                / n as f64
        };
        let wide = spread(0.1, &mut rng);
        let narrow = spread(2.0, &mut rng);
        assert!(wide > 3.0 * narrow, "wide {wide}, narrow {narrow}");
    }
}
