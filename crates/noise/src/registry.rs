//! A thread-safe registry of named privacy-budget ledgers.
//!
//! Multi-tenant deployments (the Chorus shape: DP middleware in front of
//! many concurrent analysts) need one [`BudgetAccountant`] **per tenant**,
//! shared by every thread serving that tenant — budget isolation is the
//! per-analyst privacy guarantee, so a tenant's debits must never touch
//! another tenant's ledger. [`BudgetRegistry`] provides exactly that: a
//! concurrent map from tenant name to an independently locked accountant.
//!
//! Locking is two-level. The map itself is behind an [`RwLock`] that is only
//! write-locked to register a tenant; queries take the read lock, clone the
//! tenant's `Arc`, and drop the map lock before touching the ledger. Each
//! ledger sits behind its **own** [`Mutex`], so two tenants' debits never
//! contend and one tenant's admission decision (check + debit under one
//! lock) is atomic against its own concurrent queries.

use crate::budget::{BudgetAccountant, BudgetExhausted, PrivacyBudget};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, RwLock};

/// One tenant's independently locked ledger, cheap to clone into worker
/// threads.
pub type SharedAccountant = Arc<Mutex<BudgetAccountant>>;

/// A concurrent map from tenant name to an independently locked
/// [`BudgetAccountant`].
///
/// ```
/// use rmdp_noise::{BudgetRegistry, PrivacyBudget};
///
/// let registry = BudgetRegistry::new();
/// registry.register("alice", PrivacyBudget::pure(1.0));
/// registry.register("bob", PrivacyBudget::pure(2.0));
///
/// // Alice's spend leaves Bob's ledger untouched.
/// registry.try_spend("alice", PrivacyBudget::pure(0.5)).unwrap();
/// assert_eq!(registry.remaining("alice").unwrap().epsilon, 0.5);
/// assert_eq!(registry.remaining("bob").unwrap().epsilon, 2.0);
/// ```
#[derive(Debug, Default)]
pub struct BudgetRegistry {
    // BTreeMap so enumeration (`names`) is deterministic — reports and
    // tests never depend on hash order.
    tenants: RwLock<BTreeMap<String, SharedAccountant>>,
}

impl BudgetRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `tenant` with a fresh ledger over `total`. Returns `false`
    /// (and leaves the existing ledger untouched) when the tenant already
    /// exists — re-registering must never reset a partially spent budget.
    pub fn register(&self, tenant: &str, total: PrivacyBudget) -> bool {
        let mut map = self.tenants.write().expect("budget registry poisoned");
        if map.contains_key(tenant) {
            return false;
        }
        map.insert(
            tenant.to_owned(),
            Arc::new(Mutex::new(BudgetAccountant::new(total))),
        );
        true
    }

    /// The tenant's ledger handle, for callers that need multi-step
    /// atomicity (e.g. reserve-then-commit admission holds this lock while
    /// assigning the query's replay index).
    pub fn handle(&self, tenant: &str) -> Option<SharedAccountant> {
        self.tenants
            .read()
            .expect("budget registry poisoned")
            .get(tenant)
            .cloned()
    }

    /// Debits `cost` from the tenant's ledger, refusing atomically (nothing
    /// consumed) when it exceeds what remains. `None` for unknown tenants.
    pub fn try_spend(
        &self,
        tenant: &str,
        cost: PrivacyBudget,
    ) -> Option<Result<(), BudgetExhausted>> {
        let handle = self.handle(tenant)?;
        let mut acc = handle.lock().expect("tenant ledger poisoned");
        Some(acc.try_spend(cost))
    }

    /// Returns a previously reserved `cost` to the tenant's ledger (see
    /// [`BudgetAccountant::refund`] for when that is privacy-sound).
    /// `None` for unknown tenants.
    pub fn refund(&self, tenant: &str, cost: PrivacyBudget) -> Option<()> {
        let handle = self.handle(tenant)?;
        handle.lock().expect("tenant ledger poisoned").refund(cost);
        Some(())
    }

    /// What the tenant has left, or `None` for unknown tenants.
    pub fn remaining(&self, tenant: &str) -> Option<PrivacyBudget> {
        let handle = self.handle(tenant)?;
        let acc = handle.lock().expect("tenant ledger poisoned");
        Some(acc.remaining())
    }

    /// What the tenant has spent, or `None` for unknown tenants.
    pub fn spent(&self, tenant: &str) -> Option<PrivacyBudget> {
        let handle = self.handle(tenant)?;
        let acc = handle.lock().expect("tenant ledger poisoned");
        Some(acc.spent())
    }

    /// All registered tenant names, in lexicographic (deterministic) order.
    pub fn names(&self) -> Vec<String> {
        self.tenants
            .read()
            .expect("budget registry poisoned")
            .keys()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn tenants_are_isolated() {
        let registry = BudgetRegistry::new();
        assert!(registry.register("a", PrivacyBudget::pure(1.0)));
        assert!(registry.register("b", PrivacyBudget::pure(1.0)));
        registry
            .try_spend("a", PrivacyBudget::pure(0.75))
            .unwrap()
            .unwrap();
        assert_eq!(registry.remaining("a").unwrap().epsilon, 0.25);
        assert_eq!(registry.remaining("b").unwrap().epsilon, 1.0);
        assert!(registry
            .try_spend("nobody", PrivacyBudget::pure(0.1))
            .is_none());
    }

    #[test]
    fn re_registering_does_not_reset_a_spent_ledger() {
        let registry = BudgetRegistry::new();
        assert!(registry.register("a", PrivacyBudget::pure(1.0)));
        registry
            .try_spend("a", PrivacyBudget::pure(0.5))
            .unwrap()
            .unwrap();
        assert!(!registry.register("a", PrivacyBudget::pure(100.0)));
        assert_eq!(registry.remaining("a").unwrap().epsilon, 0.5);
    }

    #[test]
    fn concurrent_debits_conserve_the_ledger_exactly() {
        // 4 threads × 16 debits of ε/64 (a power of two, so the sums are
        // exact in binary and order-independent): every admitted debit lands,
        // refusals consume nothing, and the ledger ends exactly exhausted.
        let registry = Arc::new(BudgetRegistry::new());
        registry.register("t", PrivacyBudget::pure(1.0));
        let slice = PrivacyBudget::pure(1.0 / 64.0);
        let admitted: usize = thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let registry = Arc::clone(&registry);
                    s.spawn(move || {
                        (0..16)
                            .filter(|_| registry.try_spend("t", slice).unwrap().is_ok())
                            .count()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(admitted, 64, "exactly the budget's worth admitted");
        assert_eq!(registry.spent("t").unwrap().epsilon, 1.0);
        assert!(registry.try_spend("t", slice).unwrap().is_err());
    }

    #[test]
    fn names_enumerate_deterministically() {
        let registry = BudgetRegistry::new();
        registry.register("zeta", PrivacyBudget::pure(1.0));
        registry.register("alpha", PrivacyBudget::pure(1.0));
        assert_eq!(registry.names(), ["alpha", "zeta"]);
    }
}
