//! Cauchy noise, used by smooth-sensitivity mechanisms.

use rand::Rng;

/// Samples the standard Cauchy distribution (median 0, scale 1).
///
/// Inverse-CDF sampling `tan(π(u − ½))` needs `u` on the **open** interval
/// `(0, 1)`: the generator's `gen::<f64>()` is uniform on the half-open
/// `[0, 1)`, and `u = 0` would evaluate `tan(−π/2)` — an astronomically
/// large, rounding-defined value that turns a release into garbage (and
/// `0 × huge` downstream into NaN territory). The zero is resampled away;
/// it occurs with probability 2⁻⁵³ per draw, so the loop terminates on the
/// first iteration in practice and leaves the output distribution exactly
/// Cauchy. Every returned sample is finite.
pub fn sample_standard_cauchy<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen::<f64>();
        if u > 0.0 {
            return (std::f64::consts::PI * (u - 0.5)).tan();
        }
    }
}

/// Samples a Cauchy distribution with the given scale.
///
/// A zero scale short-circuits to exactly `0.0` **before** any multiplication
/// with the (potentially astronomically large) standard sample, so degenerate
/// "no noise" runs can never produce a `0 × huge` rounding artefact.
pub fn sample_cauchy<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> f64 {
    assert!(
        scale >= 0.0 && scale.is_finite(),
        "invalid Cauchy scale {scale}"
    );
    // lint:allow(float-eq): exact zero-scale short-circuit — zero sensitivity must add exactly zero noise, and the guard above rejects negatives
    if scale == 0.0 {
        return 0.0;
    }
    scale * sample_standard_cauchy(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    #[test]
    fn median_is_zero_and_quartiles_match() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut samples: Vec<f64> = (0..n).map(|_| sample_standard_cauchy(&mut rng)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[n / 2];
        let q3 = samples[3 * n / 4];
        // Median 0, upper quartile 1 for the standard Cauchy.
        assert!(median.abs() < 0.02, "median {median}");
        assert!((q3 - 1.0).abs() < 0.05, "q3 {q3}");
    }

    #[test]
    fn scale_multiplies_quartiles() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let mut samples: Vec<f64> = (0..n).map(|_| sample_cauchy(4.0, &mut rng)).collect();
        samples.sort_by(f64::total_cmp);
        let q3 = samples[3 * n / 4];
        assert!((q3 - 4.0).abs() < 0.2, "q3 {q3}");
    }

    #[test]
    fn zero_scale_is_degenerate() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(sample_cauchy(0.0, &mut rng), 0.0);
    }

    /// A generator whose first word is exactly zero — the draw that used to
    /// produce `tan(−π/2)` — followed by ordinary nonzero words.
    struct ZeroFirst {
        calls: u64,
    }

    impl RngCore for ZeroFirst {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let word = if self.calls == 0 { 0 } else { self.calls << 40 };
            self.calls += 1;
            word
        }
    }

    #[test]
    fn the_u_equals_zero_draw_is_resampled() {
        let mut rng = ZeroFirst { calls: 0 };
        let sample = sample_standard_cauchy(&mut rng);
        assert_eq!(rng.calls, 2, "the zero draw must be rejected");
        assert!(sample.is_finite());
        // Without resampling, u = 0 evaluates tan(−π/2) ≈ −1.6e16 — an
        // answer-destroying magnitude. The resampled draw stays sane.
        assert!(sample.abs() < 1e12, "sample {sample}");
    }

    #[test]
    fn zero_scale_never_multiplies_a_huge_tail_sample() {
        // Even against the adversarial zero-first generator, a degenerate
        // scale is exactly zero (and draws nothing).
        let mut rng = ZeroFirst { calls: 0 };
        assert_eq!(sample_cauchy(0.0, &mut rng), 0.0);
        assert_eq!(rng.calls, 0);
    }

    proptest! {
        #[test]
        fn samples_are_always_finite(seed in any::<u64>(), scale in 0.0f64..1e6) {
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..64 {
                let s = sample_cauchy(scale, &mut rng);
                prop_assert!(s.is_finite(), "scale {scale} produced {s}");
                prop_assert!(sample_standard_cauchy(&mut rng).is_finite());
            }
        }
    }
}
