//! Cauchy noise, used by smooth-sensitivity mechanisms.

use rand::Rng;

/// Samples the standard Cauchy distribution (median 0, scale 1).
pub fn sample_standard_cauchy<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Inverse CDF: tan(π(u − 1/2)).
    let u: f64 = rng.gen::<f64>();
    (std::f64::consts::PI * (u - 0.5)).tan()
}

/// Samples a Cauchy distribution with the given scale.
pub fn sample_cauchy<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> f64 {
    assert!(
        scale >= 0.0 && scale.is_finite(),
        "invalid Cauchy scale {scale}"
    );
    scale * sample_standard_cauchy(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn median_is_zero_and_quartiles_match() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut samples: Vec<f64> = (0..n).map(|_| sample_standard_cauchy(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        let q3 = samples[3 * n / 4];
        // Median 0, upper quartile 1 for the standard Cauchy.
        assert!(median.abs() < 0.02, "median {median}");
        assert!((q3 - 1.0).abs() < 0.05, "q3 {q3}");
    }

    #[test]
    fn scale_multiplies_quartiles() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let mut samples: Vec<f64> = (0..n).map(|_| sample_cauchy(4.0, &mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q3 = samples[3 * n / 4];
        assert!((q3 - 4.0).abs() < 0.2, "q3 {q3}");
    }

    #[test]
    fn zero_scale_is_degenerate() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(sample_cauchy(0.0, &mut rng), 0.0);
    }
}
