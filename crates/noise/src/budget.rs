//! Privacy budgets and sequential composition.

use std::fmt;

/// An (ε, δ) differential-privacy budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrivacyBudget {
    /// The ε parameter.
    pub epsilon: f64,
    /// The δ parameter (0 for pure ε-DP).
    pub delta: f64,
}

impl PrivacyBudget {
    /// A pure ε-DP budget.
    pub fn pure(epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        PrivacyBudget {
            epsilon,
            delta: 0.0,
        }
    }

    /// An approximate (ε, δ)-DP budget.
    pub fn approximate(epsilon: f64, delta: f64) -> Self {
        assert!(
            epsilon > 0.0 && (0.0..1.0).contains(&delta),
            "invalid budget"
        );
        PrivacyBudget { epsilon, delta }
    }

    /// Whether this is a pure ε-DP budget.
    pub fn is_pure(&self) -> bool {
        // lint:allow(float-eq): pure ε-DP is exactly δ = 0; a tolerance would misclassify small approximate-DP deltas as pure
        self.delta == 0.0
    }

    /// Sequential composition: running a mechanism with budget `self` and then
    /// one with budget `other` on the same data costs the sum of both.
    pub fn compose(&self, other: &PrivacyBudget) -> PrivacyBudget {
        PrivacyBudget {
            epsilon: self.epsilon + other.epsilon,
            delta: self.delta + other.delta,
        }
    }

    /// Splits the budget into `n` equal parts (the recursive mechanism splits
    /// its ε between the Δ̂ release and the X̂ release).
    pub fn split(&self, n: usize) -> PrivacyBudget {
        assert!(n >= 1);
        PrivacyBudget {
            epsilon: self.epsilon / n as f64,
            delta: self.delta / n as f64,
        }
    }

    /// Splits the ε into two parts with ratio `fraction` for the first part.
    pub fn split_fraction(&self, fraction: f64) -> (PrivacyBudget, PrivacyBudget) {
        assert!((0.0..=1.0).contains(&fraction));
        let first = PrivacyBudget {
            epsilon: self.epsilon * fraction,
            delta: self.delta * fraction,
        };
        let second = PrivacyBudget {
            epsilon: self.epsilon - first.epsilon,
            delta: self.delta - first.delta,
        };
        (first, second)
    }
}

impl fmt::Display for PrivacyBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pure() {
            write!(f, "{}-DP", self.epsilon)
        } else {
            write!(f, "({}, {})-DP", self.epsilon, self.delta)
        }
    }
}

/// A requested debit would overdraw a [`BudgetAccountant`]. Nothing was
/// consumed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BudgetExhausted {
    /// The cost of the refused operation.
    pub requested: PrivacyBudget,
    /// What the accountant had left.
    pub remaining: PrivacyBudget,
}

impl fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "privacy budget exhausted: requested {}, remaining {}",
            self.requested, self.remaining
        )
    }
}

impl std::error::Error for BudgetExhausted {}

/// Slack for comparing accumulated floating-point spend against a total,
/// **relative to that total** so that e.g. five debits of `ε/5` still exactly
/// exhaust `ε` while tiny budgets (δ is routinely `1e-6..1e-12`) cannot be
/// overdrawn by an absolute allowance that dwarfs them.
///
/// This is the accountant's documented **admission tolerance**: with the
/// compensated ledger below, `N` debits of `total/N` accumulate to the
/// correctly rounded sum of the real debits, so the drift against `total` is
/// at most one rounding of `total/N` per debit — far inside this allowance —
/// and the worst-case overdraft the tolerance can ever admit is
/// `total · 1e-12`, privacy-insignificant at any ε.
fn budget_tolerance(total: f64) -> f64 {
    total.abs() * 1e-12
}

/// One step of Kahan (compensated) summation: adds `x` to the running
/// `(sum, compensation)` pair and returns the updated pair. The compensation
/// carries the low-order bits `sum + x` loses to rounding, so a long stream
/// of equal debits (the `N × ε/N` workload) cannot drift the ledger the way
/// a bare `+=` does — neither into spurious refusals on the last debit nor
/// into an overdraft of accumulated ulps.
fn kahan_add(sum: f64, compensation: f64, x: f64) -> (f64, f64) {
    let y = x - compensation;
    let t = sum + y;
    (t, (t - sum) - y)
}

/// How a grouped (`GROUP BY`) report splits privacy budget across its `k`
/// per-group releases under sequential composition.
///
/// The recursive mechanism releases one monotone aggregate at a time; a
/// grouped report is `k` such releases, one per key of the declared public
/// domain. Sequential composition prices the report at the **sum** of the
/// per-group costs, and this policy decides how that sum relates to the
/// session's per-release budget `ε = ε₁ + ε₂`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GroupBudgetPolicy {
    /// The whole report costs one release's `ε`; every group releases with
    /// `ε/k` (both `ε₁` and `ε₂` scaled by `1/k`). The default: a grouped
    /// report is priced like the single query it replaces, trading per-group
    /// accuracy for composition safety.
    #[default]
    SplitEvenly,
    /// Every group spends the full per-release `ε`; the report costs `k·ε`.
    /// Maximal per-group accuracy — and `k` times the privacy bill, admitted
    /// atomically up front.
    PerGroup,
}

impl std::fmt::Display for GroupBudgetPolicy {
    /// The stable policy name recorded in release traces.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GroupBudgetPolicy::SplitEvenly => "split-evenly",
            GroupBudgetPolicy::PerGroup => "per-group",
        })
    }
}

impl GroupBudgetPolicy {
    /// The fraction of the per-release `ε` each of `k` groups spends.
    pub fn per_group_fraction(self, k: usize) -> f64 {
        assert!(k >= 1, "a grouped report needs at least one group");
        match self {
            GroupBudgetPolicy::SplitEvenly => 1.0 / k as f64,
            GroupBudgetPolicy::PerGroup => 1.0,
        }
    }

    /// The atomic admission cost of a `k`-group report whose per-release
    /// cost is `per_release`. For [`GroupBudgetPolicy::SplitEvenly`] this is
    /// `per_release` exactly (not `k · per_release/k`, which could differ by
    /// an ulp); for [`GroupBudgetPolicy::PerGroup`] it is `k · per_release`.
    pub fn report_cost(self, per_release: PrivacyBudget, k: usize) -> PrivacyBudget {
        assert!(k >= 1, "a grouped report needs at least one group");
        match self {
            GroupBudgetPolicy::SplitEvenly => per_release,
            GroupBudgetPolicy::PerGroup => PrivacyBudget {
                epsilon: per_release.epsilon * k as f64,
                delta: per_release.delta * k as f64,
            },
        }
    }
}

/// A sequential-composition ledger over a fixed total [`PrivacyBudget`].
///
/// Debits are all-or-nothing: [`BudgetAccountant::try_spend`] either records
/// the full cost or — when the cost exceeds what remains — refuses and
/// leaves the ledger untouched, so a refused operation consumes no privacy.
/// The accountant is deliberately sequential (plain sequential composition,
/// the guarantee the recursive mechanism's per-release `ε₁ + ε₂` costs
/// compose under); callers that parallelise work must still funnel their
/// debits through one accountant, which is what `SqlSession::query_batch`
/// does.
/// Spend is accumulated with **compensated (Kahan) summation**: a stream of
/// `N` debits of `ε/N` sums to the correctly rounded total instead of
/// drifting by an ulp per debit, so the last debit of an exact split is
/// admitted (no spurious refusal) and the ledger cannot overspend by
/// accumulated rounding. Comparisons against the total use the documented
/// relative admission tolerance (`total · 1e-12`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BudgetAccountant {
    total: PrivacyBudget,
    spent_epsilon: f64,
    epsilon_compensation: f64,
    spent_delta: f64,
    delta_compensation: f64,
}

impl BudgetAccountant {
    /// A fresh ledger over `total`.
    pub fn new(total: PrivacyBudget) -> Self {
        BudgetAccountant {
            total,
            spent_epsilon: 0.0,
            epsilon_compensation: 0.0,
            spent_delta: 0.0,
            delta_compensation: 0.0,
        }
    }

    /// The total budget the ledger started with.
    pub fn total(&self) -> PrivacyBudget {
        self.total
    }

    /// What has been debited so far.
    pub fn spent(&self) -> PrivacyBudget {
        PrivacyBudget {
            epsilon: self.spent_epsilon,
            delta: self.spent_delta,
        }
    }

    /// What is still available (clamped at zero).
    pub fn remaining(&self) -> PrivacyBudget {
        PrivacyBudget {
            epsilon: (self.total.epsilon - self.spent_epsilon).max(0.0),
            delta: (self.total.delta - self.spent_delta).max(0.0),
        }
    }

    /// Whether a debit of `cost` would be accepted right now. The check
    /// projects the **compensated** post-debit sums — the exact sums
    /// [`BudgetAccountant::try_spend`] would record — so admission and
    /// recording can never disagree.
    pub fn can_afford(&self, cost: PrivacyBudget) -> bool {
        let (epsilon, _) = kahan_add(self.spent_epsilon, self.epsilon_compensation, cost.epsilon);
        let (delta, _) = kahan_add(self.spent_delta, self.delta_compensation, cost.delta);
        epsilon <= self.total.epsilon + budget_tolerance(self.total.epsilon)
            && delta <= self.total.delta + budget_tolerance(self.total.delta)
    }

    /// Debits `cost`, or refuses without consuming anything when `cost`
    /// exceeds the remaining budget.
    pub fn try_spend(&mut self, cost: PrivacyBudget) -> Result<(), BudgetExhausted> {
        if !self.can_afford(cost) {
            return Err(BudgetExhausted {
                requested: cost,
                remaining: self.remaining(),
            });
        }
        (self.spent_epsilon, self.epsilon_compensation) =
            kahan_add(self.spent_epsilon, self.epsilon_compensation, cost.epsilon);
        (self.spent_delta, self.delta_compensation) =
            kahan_add(self.spent_delta, self.delta_compensation, cost.delta);
        Ok(())
    }

    /// Returns a previously debited `cost` to the ledger.
    ///
    /// This exists for **reserve-then-commit** admission (the `rmdp-server`
    /// discipline): a concurrent server debits a query's cost *at admission*
    /// — so two racing queries can never both pass a `can_afford` check the
    /// budget only covers once — and refunds it if the query later fails
    /// having released nothing. A refund is only privacy-sound when the
    /// reserved release never happened; callers must never refund a cost
    /// whose noisy output was observed.
    ///
    /// The refund runs through the same compensated ledger as
    /// [`BudgetAccountant::try_spend`] (adding `-cost`): the compensation
    /// term carries the round trip's rounding, so reserve-and-refund cycles
    /// cannot drift the *effective* spend — the compensated sum every
    /// admission decision projects — beyond the documented admission
    /// tolerance. Spent totals are clamped at zero: refunding more than was
    /// ever debited leaves a fresh ledger, not a negative one.
    pub fn refund(&mut self, cost: PrivacyBudget) {
        (self.spent_epsilon, self.epsilon_compensation) =
            kahan_add(self.spent_epsilon, self.epsilon_compensation, -cost.epsilon);
        (self.spent_delta, self.delta_compensation) =
            kahan_add(self.spent_delta, self.delta_compensation, -cost.delta);
        if self.spent_epsilon < 0.0 {
            self.spent_epsilon = 0.0;
            self.epsilon_compensation = 0.0;
        }
        if self.spent_delta < 0.0 {
            self.spent_delta = 0.0;
            self.delta_compensation = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_adds_parameters() {
        let a = PrivacyBudget::pure(0.3);
        let b = PrivacyBudget::approximate(0.2, 1e-6);
        let c = a.compose(&b);
        assert!((c.epsilon - 0.5).abs() < 1e-12);
        assert!((c.delta - 1e-6).abs() < 1e-18);
        assert!(!c.is_pure());
    }

    #[test]
    fn split_divides_evenly() {
        let b = PrivacyBudget::pure(1.0).split(4);
        assert!((b.epsilon - 0.25).abs() < 1e-12);
        assert!(b.is_pure());
    }

    #[test]
    fn split_fraction_partitions_the_budget() {
        let (a, b) = PrivacyBudget::pure(0.5).split_fraction(0.4);
        assert!((a.epsilon - 0.2).abs() < 1e-12);
        assert!((b.epsilon - 0.3).abs() < 1e-12);
        let total = a.compose(&b);
        assert!((total.epsilon - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", PrivacyBudget::pure(0.5)), "0.5-DP");
        assert_eq!(
            format!("{}", PrivacyBudget::approximate(0.5, 0.1)),
            "(0.5, 0.1)-DP"
        );
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn non_positive_epsilon_rejected() {
        let _ = PrivacyBudget::pure(0.0);
    }

    #[test]
    fn accountant_debits_and_refuses_overdrafts_atomically() {
        let mut acc = BudgetAccountant::new(PrivacyBudget::pure(1.0));
        assert!(acc.try_spend(PrivacyBudget::pure(0.6)).is_ok());
        assert!((acc.remaining().epsilon - 0.4).abs() < 1e-12);

        let err = acc.try_spend(PrivacyBudget::pure(0.6)).unwrap_err();
        assert!((err.requested.epsilon - 0.6).abs() < 1e-12);
        assert!((err.remaining.epsilon - 0.4).abs() < 1e-12);
        // The refused debit consumed nothing.
        assert!((acc.remaining().epsilon - 0.4).abs() < 1e-12);

        assert!(acc.try_spend(PrivacyBudget::pure(0.4)).is_ok());
        assert_eq!(acc.remaining().epsilon, 0.0);
    }

    #[test]
    fn repeated_fractional_debits_exactly_exhaust_the_total() {
        let mut acc = BudgetAccountant::new(PrivacyBudget::pure(1.0));
        for _ in 0..5 {
            acc.try_spend(PrivacyBudget::pure(0.2)).unwrap();
        }
        assert!(!acc.can_afford(PrivacyBudget::pure(0.2)));
        assert!(acc.spent().epsilon <= 1.0 + 1e-9);
    }

    #[test]
    fn ten_tenth_debits_exhaust_a_pure_budget_with_no_refusal_and_no_overdraft() {
        // The Kahan regression: `0.1` is not exact in binary, and a bare
        // `+=` accumulates an ulp of drift per debit — enough for the tenth
        // debit to be spuriously refused (or for the ledger to overspend)
        // depending on the rounding direction. Compensated summation makes
        // the accumulated spend the correctly rounded sum, for any total.
        for total in [1.0, 0.7, 0.3, 1e-9, 2.6543] {
            let mut acc = BudgetAccountant::new(PrivacyBudget::pure(total));
            let slice = PrivacyBudget::pure(total / 10.0);
            for i in 0..10 {
                acc.try_spend(slice)
                    .unwrap_or_else(|e| panic!("debit {i} of {total}/10 refused: {e}"));
            }
            // Exhausted: nothing measurable is left, and the next slice is
            // refused — no refusal before, no overdraft after.
            let spent = acc.spent().epsilon;
            assert!(
                (spent - total).abs() <= budget_tolerance(total),
                "{total}: spent {spent}"
            );
            assert!(acc.remaining().epsilon <= budget_tolerance(total));
            assert!(!acc.can_afford(slice), "{total}: eleventh debit admitted");
        }
    }

    #[test]
    fn long_equal_debit_streams_do_not_drift() {
        // 1000 debits of ε/1000: naive accumulation drifts by hundreds of
        // ulps; the compensated ledger stays within the admission tolerance
        // the whole way and admits every slice of the exact split.
        let total = 0.1;
        let n = 1000;
        let mut acc = BudgetAccountant::new(PrivacyBudget::pure(total));
        let slice = PrivacyBudget::pure(total / n as f64);
        for _ in 0..n {
            acc.try_spend(slice).unwrap();
        }
        assert!((acc.spent().epsilon - total).abs() <= budget_tolerance(total));
        assert!(!acc.can_afford(slice));
    }

    #[test]
    fn group_policy_prices_reports_and_groups_consistently() {
        let per_release = PrivacyBudget::pure(0.5);

        let split = GroupBudgetPolicy::default();
        assert_eq!(split, GroupBudgetPolicy::SplitEvenly);
        assert_eq!(split.report_cost(per_release, 8).epsilon, 0.5);
        assert!((split.per_group_fraction(8) - 0.125).abs() < 1e-15);
        // SplitEvenly's report cost is the per-release budget *exactly*,
        // not k·(ε/k) — so admission never depends on a rounding round-trip.
        assert_eq!(split.report_cost(per_release, 7).epsilon, 0.5);

        let full = GroupBudgetPolicy::PerGroup;
        assert_eq!(full.per_group_fraction(8), 1.0);
        assert!((full.report_cost(per_release, 8).epsilon - 4.0).abs() < 1e-12);

        let approx = PrivacyBudget::approximate(0.5, 1e-8);
        assert!((full.report_cost(approx, 4).delta - 4e-8).abs() < 1e-20);
        assert_eq!(split.report_cost(approx, 4).delta, 1e-8);
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn group_policy_rejects_zero_groups() {
        let _ = GroupBudgetPolicy::SplitEvenly.per_group_fraction(0);
    }

    #[test]
    fn refund_restores_a_reserved_debit_exactly() {
        // The server's reserve-then-commit round trip: reserve at admission,
        // refund when the query fails having released nothing. The ledger
        // must land back on its exact pre-reserve state — including through
        // an inexact running sum (0.1 is not exact in binary).
        let mut acc = BudgetAccountant::new(PrivacyBudget::pure(1.0));
        acc.try_spend(PrivacyBudget::pure(0.1)).unwrap();
        let before = acc.remaining().epsilon;
        acc.try_spend(PrivacyBudget::pure(0.3)).unwrap();
        acc.refund(PrivacyBudget::pure(0.3));
        // The effective spend is back within the admission tolerance (the
        // compensation term carries the round trip's rounding) …
        assert!((acc.remaining().epsilon - before).abs() <= budget_tolerance(1.0));
        // … and the freed budget is genuinely spendable again: nine more
        // 0.1ε debits admit (the compensated stream cannot spuriously
        // refuse) and exactly exhaust the total.
        for i in 0..9 {
            acc.try_spend(PrivacyBudget::pure(0.1))
                .unwrap_or_else(|e| panic!("debit {i} refused after refund: {e}"));
        }
        assert!(!acc.can_afford(PrivacyBudget::pure(0.1)));
    }

    #[test]
    fn refund_clamps_at_a_fresh_ledger() {
        let mut acc = BudgetAccountant::new(PrivacyBudget::pure(1.0));
        acc.try_spend(PrivacyBudget::pure(0.2)).unwrap();
        acc.refund(PrivacyBudget::pure(0.5));
        assert_eq!(acc.spent().epsilon, 0.0);
        assert_eq!(acc.remaining().epsilon, 1.0);
    }

    #[test]
    fn delta_is_tracked_independently() {
        let mut acc = BudgetAccountant::new(PrivacyBudget::approximate(1.0, 1e-6));
        acc.try_spend(PrivacyBudget::approximate(0.1, 1e-6))
            .unwrap();
        // δ is gone even though plenty of ε remains.
        assert!(!acc.can_afford(PrivacyBudget::approximate(0.1, 1e-7)));
        assert!(acc.can_afford(PrivacyBudget::pure(0.1)));
    }

    #[test]
    fn tolerance_is_relative_so_tiny_delta_budgets_cannot_be_overdrawn() {
        // With an absolute slack, a 1e-9 allowance would admit a δ debit 10x
        // the entire 1e-10 budget. The relative tolerance must refuse it.
        let mut acc = BudgetAccountant::new(PrivacyBudget::approximate(1.0, 1e-10));
        let err = acc
            .try_spend(PrivacyBudget::approximate(0.1, 1e-9))
            .unwrap_err();
        assert_eq!(err.remaining.delta, 1e-10);
        // The exact budget is still spendable.
        acc.try_spend(PrivacyBudget::approximate(0.1, 1e-10))
            .unwrap();
        assert!(!acc.can_afford(PrivacyBudget::approximate(0.1, 1e-12)));
    }
}
