//! Privacy budgets and sequential composition.

use std::fmt;

/// An (ε, δ) differential-privacy budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrivacyBudget {
    /// The ε parameter.
    pub epsilon: f64,
    /// The δ parameter (0 for pure ε-DP).
    pub delta: f64,
}

impl PrivacyBudget {
    /// A pure ε-DP budget.
    pub fn pure(epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        PrivacyBudget {
            epsilon,
            delta: 0.0,
        }
    }

    /// An approximate (ε, δ)-DP budget.
    pub fn approximate(epsilon: f64, delta: f64) -> Self {
        assert!(
            epsilon > 0.0 && (0.0..1.0).contains(&delta),
            "invalid budget"
        );
        PrivacyBudget { epsilon, delta }
    }

    /// Whether this is a pure ε-DP budget.
    pub fn is_pure(&self) -> bool {
        self.delta == 0.0
    }

    /// Sequential composition: running a mechanism with budget `self` and then
    /// one with budget `other` on the same data costs the sum of both.
    pub fn compose(&self, other: &PrivacyBudget) -> PrivacyBudget {
        PrivacyBudget {
            epsilon: self.epsilon + other.epsilon,
            delta: self.delta + other.delta,
        }
    }

    /// Splits the budget into `n` equal parts (the recursive mechanism splits
    /// its ε between the Δ̂ release and the X̂ release).
    pub fn split(&self, n: usize) -> PrivacyBudget {
        assert!(n >= 1);
        PrivacyBudget {
            epsilon: self.epsilon / n as f64,
            delta: self.delta / n as f64,
        }
    }

    /// Splits the ε into two parts with ratio `fraction` for the first part.
    pub fn split_fraction(&self, fraction: f64) -> (PrivacyBudget, PrivacyBudget) {
        assert!((0.0..=1.0).contains(&fraction));
        let first = PrivacyBudget {
            epsilon: self.epsilon * fraction,
            delta: self.delta * fraction,
        };
        let second = PrivacyBudget {
            epsilon: self.epsilon - first.epsilon,
            delta: self.delta - first.delta,
        };
        (first, second)
    }
}

impl fmt::Display for PrivacyBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pure() {
            write!(f, "{}-DP", self.epsilon)
        } else {
            write!(f, "({}, {})-DP", self.epsilon, self.delta)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_adds_parameters() {
        let a = PrivacyBudget::pure(0.3);
        let b = PrivacyBudget::approximate(0.2, 1e-6);
        let c = a.compose(&b);
        assert!((c.epsilon - 0.5).abs() < 1e-12);
        assert!((c.delta - 1e-6).abs() < 1e-18);
        assert!(!c.is_pure());
    }

    #[test]
    fn split_divides_evenly() {
        let b = PrivacyBudget::pure(1.0).split(4);
        assert!((b.epsilon - 0.25).abs() < 1e-12);
        assert!(b.is_pure());
    }

    #[test]
    fn split_fraction_partitions_the_budget() {
        let (a, b) = PrivacyBudget::pure(0.5).split_fraction(0.4);
        assert!((a.epsilon - 0.2).abs() < 1e-12);
        assert!((b.epsilon - 0.3).abs() < 1e-12);
        let total = a.compose(&b);
        assert!((total.epsilon - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", PrivacyBudget::pure(0.5)), "0.5-DP");
        assert_eq!(
            format!("{}", PrivacyBudget::approximate(0.5, 0.1)),
            "(0.5, 0.1)-DP"
        );
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn non_positive_epsilon_rejected() {
        let _ = PrivacyBudget::pure(0.0);
    }
}
