//! Accuracy notions.
//!
//! Def. 2 of the paper calls an answer (ε, δ)-accurate when
//! `Pr[|A(D) − q(D)| > ε] ≤ δ`. For Laplace noise the two quantities are
//! linked by the tail bound `Pr[|Lap(b)| > c·b] = e^{−c}`.

use crate::laplace::laplace_tail;

/// The error bound `t` such that `Pr[|Lap(scale)| > t] ≤ delta`, i.e.
/// `t = scale · ln(1/delta)`.
pub fn laplace_error_at_confidence(scale: f64, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    scale * (1.0 / delta).ln()
}

/// The failure probability of a Laplace release at error tolerance `t`.
pub fn laplace_failure_probability(scale: f64, t: f64) -> f64 {
    laplace_tail(t, scale)
}

/// Empirical check of (ε, δ)-accuracy over a batch of released answers
/// against the true answer: the fraction of answers whose absolute error
/// exceeds `error_bound` must be at most `delta` (plus the statistical slack
/// supplied by the caller).
pub fn is_empirically_accurate(
    answers: &[f64],
    true_answer: f64,
    error_bound: f64,
    delta: f64,
    slack: f64,
) -> bool {
    if answers.is_empty() {
        return true;
    }
    let exceed = answers
        .iter()
        .filter(|a| (*a - true_answer).abs() > error_bound)
        .count() as f64
        / answers.len() as f64;
    exceed <= delta + slack
}

/// Relative error `|answer − truth| / truth`, the metric plotted throughout
/// the paper's evaluation (with the convention that the error is the absolute
/// error when the true answer is 0).
pub fn relative_error(answer: f64, truth: f64) -> f64 {
    // lint:allow(float-eq): exact zero sentinel — the absolute-error convention applies precisely at truth == 0, not near it
    if truth == 0.0 {
        answer.abs()
    } else {
        (answer - truth).abs() / truth.abs()
    }
}

/// Median of a slice (0 for an empty slice). Used for the median relative
/// error reported in the experiments. NaN values are ordered by
/// [`f64::total_cmp`] (positive NaN past `+∞`), so a poisoned answer skews
/// the statistic deterministically instead of making the sort panic or —
/// worse — silently shuffle under an inconsistent comparator.
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplace::sample_laplace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn error_bound_and_failure_probability_are_inverse() {
        let scale = 2.0;
        let delta = 0.05;
        let t = laplace_error_at_confidence(scale, delta);
        assert!((laplace_failure_probability(scale, t) - delta).abs() < 1e-12);
    }

    #[test]
    fn laplace_mechanism_is_empirically_accurate() {
        let mut rng = StdRng::seed_from_u64(23);
        let scale = 3.0;
        let truth = 100.0;
        let answers: Vec<f64> = (0..20_000)
            .map(|_| truth + sample_laplace(scale, &mut rng))
            .collect();
        let delta = 0.1;
        let bound = laplace_error_at_confidence(scale, delta);
        assert!(is_empirically_accurate(&answers, truth, bound, delta, 0.01));
        // A much tighter bound must fail.
        assert!(!is_empirically_accurate(
            &answers,
            truth,
            bound / 10.0,
            delta,
            0.01
        ));
    }

    #[test]
    fn relative_error_handles_zero_truth() {
        assert!((relative_error(3.0, 0.0) - 3.0).abs() < 1e-12);
        assert!((relative_error(110.0, 100.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(-90.0, -100.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn median_of_odd_and_even_lengths() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn median_survives_nan_answers() {
        // Regression: a single NaN answer used to be able to panic (or
        // nondeterministically shuffle) the sort behind every reported
        // median. total_cmp puts positive NaN last, so the median of the
        // remaining finite values is still meaningful.
        assert_eq!(median(&[3.0, f64::NAN, 1.0]), 3.0);
        assert!(median(&[f64::NAN]).is_nan());
    }
}
