//! Smooth sensitivity (Nissim, Raskhodnikova & Smith, STOC 2007).
//!
//! A β-smooth upper bound on the local sensitivity is
//! `S(D) = max_{s ≥ 0} e^{−βs} · LS^{(s)}(D)` where `LS^{(s)}` is the maximum
//! local sensitivity over databases at distance at most `s` from `D`. Adding
//! Cauchy noise scaled by `2·S(D)/ε` with `β = ε/6` yields ε-differential
//! privacy. The paper's local-sensitivity baselines (\[7\], \[10\]) are built on
//! this machinery.

use crate::cauchy::sample_standard_cauchy;
use rand::Rng;

/// Computes the β-smooth sensitivity from a callback giving the local
/// sensitivity at distance `s`, truncated at `max_distance` (which should be
/// the distance at which `LS^{(s)}` saturates — e.g. `n − 2` for triangle
/// counting).
pub fn smooth_sensitivity<F>(beta: f64, max_distance: usize, ls_at_distance: F) -> f64
where
    F: Fn(usize) -> f64,
{
    assert!(beta > 0.0, "beta must be positive");
    let mut best = 0.0f64;
    for s in 0..=max_distance {
        let candidate = (-beta * s as f64).exp() * ls_at_distance(s);
        if candidate > best {
            best = candidate;
        }
    }
    best
}

/// The smoothing parameter β = ε/6 matching the Cauchy-noise instantiation.
pub fn cauchy_beta(epsilon: f64) -> f64 {
    epsilon / 6.0
}

/// Releases `value + 2·smooth_sens/ε · Cauchy(1)`, the standard
/// smooth-sensitivity release that achieves ε-DP when `smooth_sens` is an
/// (ε/6)-smooth upper bound on the local sensitivity.
pub fn release_with_cauchy<R: Rng + ?Sized>(
    value: f64,
    smooth_sens: f64,
    epsilon: f64,
    rng: &mut R,
) -> f64 {
    assert!(epsilon > 0.0 && smooth_sens >= 0.0);
    value + 2.0 * smooth_sens / epsilon * sample_standard_cauchy(rng)
}

/// Releases with Laplace noise calibrated to a β-smooth bound, the
/// (ε, δ)-DP variant (`β = ε / (2 ln(2/δ))`, scale `2·S/ε`).
pub fn release_with_laplace<R: Rng + ?Sized>(
    value: f64,
    smooth_sens: f64,
    epsilon: f64,
    rng: &mut R,
) -> f64 {
    assert!(epsilon > 0.0 && smooth_sens >= 0.0);
    value + crate::laplace::sample_laplace(2.0 * smooth_sens / epsilon, rng)
}

/// The β for the (ε, δ) Laplace-noise variant.
pub fn laplace_beta(epsilon: f64, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0);
    epsilon / (2.0 * (2.0 / delta).ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn smooth_sensitivity_dominates_local_sensitivity() {
        // LS^{(0)} is always included (s = 0 term has weight 1).
        let ls = |s: usize| (3 + s) as f64;
        let s = smooth_sensitivity(0.5, 100, ls);
        assert!(s >= 3.0);
        // And it never exceeds the global bound reached at saturation.
        assert!(s <= 103.0);
    }

    #[test]
    fn large_beta_recovers_local_sensitivity() {
        let ls = |s: usize| (10 + s) as f64;
        let s = smooth_sensitivity(50.0, 100, ls);
        assert!((s - 10.0).abs() < 1e-6);
    }

    #[test]
    fn small_beta_approaches_global_maximum() {
        let ls = |s: usize| if s >= 5 { 100.0 } else { 1.0 };
        let s = smooth_sensitivity(1e-9, 10, ls);
        assert!((s - 100.0).abs() < 1e-3);
    }

    #[test]
    fn releases_are_centred_on_the_true_value() {
        let mut rng = StdRng::seed_from_u64(41);
        let n = 50_000;
        let mut answers: Vec<f64> = (0..n)
            .map(|_| release_with_cauchy(50.0, 2.0, 1.0, &mut rng))
            .collect();
        answers.sort_by(f64::total_cmp);
        let median = answers[n / 2];
        assert!((median - 50.0).abs() < 0.5, "median {median}");

        let lap: Vec<f64> = (0..n)
            .map(|_| release_with_laplace(50.0, 2.0, 1.0, &mut rng))
            .collect();
        let mean = lap.iter().sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn beta_helpers() {
        assert!((cauchy_beta(0.6) - 0.1).abs() < 1e-12);
        assert!(laplace_beta(0.5, 0.1) > 0.0);
    }

    #[test]
    fn sorting_a_slice_containing_nan_does_not_panic() {
        // Regression: `sort_by(|a, b| a.partial_cmp(b).unwrap())` panicked
        // the moment a single answer was NaN, taking the whole release path
        // down. `f64::total_cmp` orders NaN deterministically instead (the
        // positive NaN after +∞), so aggregation survives a poisoned value.
        let mut answers = [3.0, f64::NAN, -1.0, f64::INFINITY, 2.0, -f64::NAN];
        answers.sort_by(f64::total_cmp);
        assert_eq!(answers[0].to_bits(), (-f64::NAN).to_bits());
        assert_eq!(answers[1..5], [-1.0, 2.0, 3.0, f64::INFINITY]);
        assert!(answers[5].is_nan());
    }
}
