//! Solve dispatch and the dense two-phase tableau oracle.
//!
//! [`solve`] routes a model to the configured [`SolverBackend`]: the sparse
//! bounded-variable revised simplex of [`crate::revised`] by default, or the
//! dense tableau below — retained as a structurally independent
//! differential-testing oracle (the property tests pit the two against each
//! other on random LPs and on the mechanism's real sequence models).
//!
//! The dense oracle standardises a [`Model`] into equality form
//! `min c'ᵀx'  s.t.  Ax' = b, x' ≥ 0` (shifting finite lower bounds to zero,
//! reflecting upper-bounded-only variables, splitting free variables and
//! turning finite upper bounds into explicit rows), then runs the classical
//! two-phase tableau simplex:
//!
//! * phase 1 minimises the sum of artificial variables to find a basic
//!   feasible solution (or proves infeasibility),
//! * phase 2 minimises the real objective (or detects unboundedness).
//!
//! Pivoting uses Dantzig's rule and falls back to Bland's rule after a
//! configurable number of iterations so the solver cannot cycle forever on
//! degenerate instances.

use crate::error::LpError;
use crate::model::{ConstraintOp, Model, Sense};
use crate::solution::{Solution, SolveStats};

/// Which solver implementation a solve runs on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SolverBackend {
    /// The bounded-variable revised simplex of [`crate::revised`] over a
    /// **sparse Markowitz LU** basis factorization (`crate::lu`) maintained
    /// by a bounded eta file (default): per-pivot work tracks the factor
    /// nonzeros instead of `rows²`, which is what lets 100k-row instances
    /// through. Supports [`crate::PreparedLp`] warm starts.
    #[default]
    SparseLu,
    /// The same revised simplex over the dense column-major `B⁻¹` this
    /// backend grew out of. Kept as a differential-testing oracle for the
    /// LU path (identical pivot logic, independent linear algebra); also
    /// supports warm starts. `O(rows²)` memory and per-pivot work.
    Revised,
    /// The dense two-phase tableau this crate started from. Kept as a
    /// structurally independent differential-testing oracle (column splits,
    /// explicit upper-bound rows, full tableau updates), so agreement with
    /// the revised backends is strong evidence all are right.
    DenseTableau,
}

/// Options controlling the simplex run.
#[derive(Clone, Copy, Debug)]
pub struct SimplexOptions {
    /// Hard cap on pivots per phase.
    pub max_iterations: usize,
    /// After this many pivots in a phase, switch from Dantzig's rule to
    /// Bland's anti-cycling rule.
    pub bland_after: usize,
    /// Numerical tolerance for reduced costs, pivots and feasibility.
    pub tol: f64,
    /// Which implementation solves the model.
    pub backend: SolverBackend,
    /// Revised backends only: pivots between drift checks of the maintained
    /// basis representation. Each check costs O(nnz); a primal residual above
    /// tolerance triggers a from-scratch refactorization (and a
    /// recomputation of the primal point). Smaller values trade time for
    /// numerical robustness on long pivot chains over badly scaled data.
    pub refactor_every: usize,
    /// Sparse-LU backend only: relative threshold of Markowitz pivoting. A
    /// candidate pivot must be at least this fraction of the largest
    /// magnitude in its column. Larger values favour stability, smaller
    /// values favour sparsity; clamped to `[0, 1]`.
    pub markowitz_threshold: f64,
    /// Sparse-LU backend only: maximum eta-file (product-form update)
    /// length before a forced refactorization. Bounds both the per-solve
    /// cost of applying updates and the error they can accumulate.
    pub update_cap: usize,
    /// Run the presolve pass (`crate::presolve`) before solving. Applies
    /// to [`solve`]-path entries ([`crate::Model::solve`] /
    /// [`crate::Model::solve_with`]) on every backend; [`crate::PreparedLp`]
    /// always applies its own RHS-safe subset instead.
    pub presolve: bool,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_iterations: 30_000,
            bland_after: 5_000,
            tol: 1e-9,
            backend: SolverBackend::default(),
            refactor_every: 64,
            markowitz_threshold: 0.1,
            update_cap: 64,
            presolve: true,
        }
    }
}

/// How each model variable maps into the standardised nonnegative variables.
#[derive(Clone, Copy, Debug)]
enum VarMap {
    /// `x = lower + x'` with `x' ≥ 0`.
    Shifted { col: usize, lower: f64 },
    /// `x = upper − x'` with `x' ≥ 0` (no finite lower bound).
    Reflected { col: usize, upper: f64 },
    /// `x = x⁺ − x⁻` with both parts nonnegative (free variable).
    Free { pos: usize, neg: usize },
}

struct Standardized {
    /// Row-major constraint matrix; each row has `cols + 1` entries, the last
    /// being the right-hand side.
    rows: Vec<Vec<f64>>,
    /// Number of structural + slack columns (artificials are appended later).
    cols: usize,
    /// Phase-2 cost of every column.
    costs: Vec<f64>,
    /// Mapping from model variables to standardised columns.
    var_map: Vec<VarMap>,
    /// Index of the first slack column (used only for diagnostics).
    #[allow(dead_code)]
    slack_start: usize,
}

fn standardize(model: &Model, minimize: bool, perturbation: f64) -> Result<Standardized, LpError> {
    let mut var_map = Vec::with_capacity(model.vars.len());
    let mut cols = 0usize;
    // Extra rows for finite upper bounds of shifted variables.
    let mut upper_rows: Vec<(usize, f64)> = Vec::new();

    for v in &model.vars {
        if v.lower.is_finite() {
            let col = cols;
            cols += 1;
            var_map.push(VarMap::Shifted {
                col,
                lower: v.lower,
            });
            if v.upper.is_finite() {
                upper_rows.push((col, v.upper - v.lower));
            }
        } else if v.upper.is_finite() {
            let col = cols;
            cols += 1;
            var_map.push(VarMap::Reflected {
                col,
                upper: v.upper,
            });
        } else {
            let pos = cols;
            let neg = cols + 1;
            cols += 2;
            var_map.push(VarMap::Free { pos, neg });
        }
    }

    let n_structural = cols;

    // Count slacks: one per inequality (model constraints + upper-bound rows).
    let n_ineq = model
        .constraints
        .iter()
        .filter(|c| c.op != ConstraintOp::Eq)
        .count()
        + upper_rows.len();
    let total_cols = n_structural + n_ineq;

    let sign = if minimize { 1.0 } else { -1.0 };
    let mut costs = vec![0.0; total_cols];
    for (v, def) in model.vars.iter().enumerate() {
        let c = sign * def.objective;
        match var_map[v] {
            VarMap::Shifted { col, .. } => costs[col] += c,
            VarMap::Reflected { col, .. } => costs[col] -= c,
            VarMap::Free { pos, neg } => {
                costs[pos] += c;
                costs[neg] -= c;
            }
        }
    }

    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(model.constraints.len() + upper_rows.len());
    let mut next_slack = n_structural;

    let mut push_row = |coeffs: Vec<(usize, f64)>, op: ConstraintOp, rhs: f64| {
        let mut row = vec![0.0; total_cols + 1];
        for (col, a) in coeffs {
            row[col] += a;
        }
        match op {
            ConstraintOp::Le => {
                row[next_slack] = 1.0;
                next_slack += 1;
            }
            ConstraintOp::Ge => {
                row[next_slack] = -1.0;
                next_slack += 1;
            }
            ConstraintOp::Eq => {}
        }
        row[total_cols] = rhs;
        rows.push(row);
    };

    for c in &model.constraints {
        let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(c.terms.len() + 1);
        let mut rhs = c.rhs;
        for &(v, a) in &c.terms {
            match var_map[v.index()] {
                VarMap::Shifted { col, lower } => {
                    coeffs.push((col, a));
                    rhs -= a * lower;
                }
                VarMap::Reflected { col, upper } => {
                    coeffs.push((col, -a));
                    rhs -= a * upper;
                }
                VarMap::Free { pos, neg } => {
                    coeffs.push((pos, a));
                    coeffs.push((neg, -a));
                }
            }
        }
        push_row(coeffs, c.op, rhs);
    }
    for &(col, ub) in &upper_rows {
        push_row(vec![(col, 1.0)], ConstraintOp::Le, ub);
    }

    // Normalise to b ≥ 0.
    for row in &mut rows {
        let rhs = *row.last().expect("row has rhs");
        if rhs < 0.0 {
            for x in row.iter_mut() {
                *x = -*x;
            }
        }
    }

    // Optional anti-degeneracy perturbation: a tiny, deterministic, strictly
    // increasing offset per row breaks the ratio-test ties that make highly
    // degenerate instances stall. Applied only on the retry path of
    // [`solve`], so the common case stays exact.
    if perturbation > 0.0 {
        for (i, row) in rows.iter_mut().enumerate() {
            let rhs = row.last_mut().expect("row has rhs");
            *rhs += perturbation * (i + 1) as f64;
        }
    }

    Ok(Standardized {
        rows,
        cols: total_cols,
        costs,
        var_map,
        slack_start: n_structural,
    })
}

/// State of the tableau during the simplex iterations.
struct Tableau {
    /// m rows, each of width `width + 1` (rhs last).
    rows: Vec<Vec<f64>>,
    /// Number of columns excluding the rhs.
    width: usize,
    /// Cost row of width `width + 1`; the last entry holds minus the current
    /// objective value.
    cost: Vec<f64>,
    /// Basic column of each row.
    basis: Vec<usize>,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        let pivot_val = self.rows[row][col];
        debug_assert!(pivot_val.abs() > 0.0);
        let inv = 1.0 / pivot_val;
        for x in self.rows[row].iter_mut() {
            *x *= inv;
        }
        // Borrow the pivot row immutably via a clone-free split.
        let pivot_row = std::mem::take(&mut self.rows[row]);
        for (i, r) in self.rows.iter_mut().enumerate() {
            if i == row {
                continue;
            }
            let factor = r[col];
            if factor != 0.0 {
                for (x, &p) in r.iter_mut().zip(pivot_row.iter()) {
                    *x -= factor * p;
                }
                // Clean the pivot column explicitly to avoid drift.
                r[col] = 0.0;
            }
        }
        let factor = self.cost[col];
        if factor != 0.0 {
            for (x, &p) in self.cost.iter_mut().zip(pivot_row.iter()) {
                *x -= factor * p;
            }
            self.cost[col] = 0.0;
        }
        self.rows[row] = pivot_row;
        self.basis[row] = col;
    }

    /// Runs simplex iterations until optimality/unboundedness. `allowed_cols`
    /// limits which columns may enter (used to keep artificials out in phase
    /// 2). Returns the number of iterations or an error.
    fn iterate(&mut self, allowed_cols: usize, options: &SimplexOptions) -> Result<usize, LpError> {
        let tol = options.tol;
        let mut iterations = 0usize;
        loop {
            if iterations > options.max_iterations {
                return Err(LpError::IterationLimit {
                    limit: options.max_iterations,
                });
            }
            let use_bland = iterations >= options.bland_after;

            // Entering column.
            let mut entering: Option<usize> = None;
            if use_bland {
                for j in 0..allowed_cols {
                    if self.cost[j] < -tol {
                        entering = Some(j);
                        break;
                    }
                }
            } else {
                let mut best = -tol;
                for j in 0..allowed_cols {
                    if self.cost[j] < best {
                        best = self.cost[j];
                        entering = Some(j);
                    }
                }
            }
            let Some(col) = entering else {
                return Ok(iterations);
            };

            // Ratio test. Only entries comfortably above the numerical noise
            // floor are eligible pivots: dividing by a near-zero pivot would
            // amplify rounding errors across the whole tableau.
            let pivot_eligible = 1e-7_f64.max(tol);
            let mut leaving: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for (i, row) in self.rows.iter().enumerate() {
                let a = row[col];
                if a > pivot_eligible {
                    // Guard against slightly negative right-hand sides caused
                    // by numerical drift: a negative ratio would move the
                    // basis the wrong way.
                    let ratio = (row[self.width] / a).max(0.0);
                    let accept = match leaving {
                        None => true,
                        Some(l) => {
                            if ratio < best_ratio - tol {
                                true
                            } else if ratio < best_ratio + tol {
                                if use_bland {
                                    // Bland's anti-cycling tie-break:
                                    // smallest basic index leaves.
                                    self.basis[i] < self.basis[l]
                                } else {
                                    // Numerical tie-break: prefer the larger
                                    // pivot element for stability.
                                    a > self.rows[l][col]
                                }
                            } else {
                                false
                            }
                        }
                    };
                    if accept {
                        best_ratio = best_ratio.min(ratio);
                        leaving = Some(i);
                    }
                }
            }
            let Some(row) = leaving else {
                return Err(LpError::Unbounded);
            };

            self.pivot(row, col);
            iterations += 1;
        }
    }
}

/// Solves a model on the backend selected by
/// [`SimplexOptions::backend`], returning an optimal solution or an error.
///
/// When [`SimplexOptions::presolve`] is set (the default), the model is
/// first reduced by the presolve pass; the reduced model is solved on the
/// configured backend and the solution is mapped back through the postsolve
/// record, with the objective re-evaluated against the original costs.
pub fn solve(model: &Model, options: &SimplexOptions) -> Result<Solution, LpError> {
    if !options.presolve {
        return solve_backend(model, options);
    }
    let pre = crate::presolve::presolve(model)?;
    let mut sol = solve_backend(&pre.reduced, options)?;
    let values = pre.postsolve(&sol.values);
    let objective = pre.objective_of(&values);
    sol.stats.presolve_rows_removed = pre.rows_removed;
    sol.stats.presolve_cols_removed = pre.cols_removed;
    Ok(Solution {
        objective,
        values,
        stats: sol.stats,
    })
}

/// Backend dispatch without presolve.
fn solve_backend(model: &Model, options: &SimplexOptions) -> Result<Solution, LpError> {
    match options.backend {
        SolverBackend::SparseLu | SolverBackend::Revised => {
            crate::revised::solve_model(model, options)
        }
        SolverBackend::DenseTableau => solve_dense(model, options),
    }
}

/// Solves on the dense tableau oracle.
///
/// Highly degenerate instances can stall the plain simplex; if the iteration
/// limit is hit, the solve is retried with a tiny deterministic right-hand
/// side perturbation (1e-8, then 1e-6 per row index) that breaks the
/// degeneracy. The perturbation changes the optimum by at most the
/// perturbation times the dual magnitudes — negligible for the LPs produced
/// by the mechanism — and is only used on the fallback path.
pub(crate) fn solve_dense(model: &Model, options: &SimplexOptions) -> Result<Solution, LpError> {
    // Retry with perturbation on both stalling (iteration limit) and on an
    // unboundedness verdict: on heavily degenerate instances accumulated
    // rounding can empty a pivot column, and the perturbed re-solve settles
    // the question from a fresh tableau.
    let retryable = |e: &LpError| matches!(e, LpError::IterationLimit { .. } | LpError::Unbounded);
    match solve_once(model, options, 0.0) {
        Err(ref e) if retryable(e) => match solve_once(model, options, 1e-8) {
            Err(ref e2) if retryable(e2) => solve_once(model, options, 1e-6),
            other => other,
        },
        other => other,
    }
}

fn solve_once(
    model: &Model,
    options: &SimplexOptions,
    perturbation: f64,
) -> Result<Solution, LpError> {
    model.validate()?;

    let minimize = model.sense == Sense::Minimize;
    let std = standardize(model, minimize, perturbation)?;
    let m = std.rows.len();
    let n = std.cols;
    let tol = options.tol;

    // Attach artificial variables where no +1 slack is available.
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut basis: Vec<usize> = Vec::with_capacity(m);
    let mut n_artificial = 0usize;

    // First pass: figure out which rows need artificials so we know the final
    // width before building the padded rows.
    let mut needs_artificial = vec![true; m];
    for (i, row) in std.rows.iter().enumerate() {
        // A slack column with coefficient +1 in this row (and zero elsewhere
        // by construction) can serve as the initial basic variable.
        if row[std.slack_start..n]
            .iter()
            .any(|&v| (v - 1.0).abs() <= tol)
        {
            // Slack columns appear in exactly one row, so +1 there means
            // the column is a valid starting basis column.
            needs_artificial[i] = false;
        }
        if needs_artificial[i] {
            n_artificial += 1;
        }
    }
    let total = n + n_artificial;

    let mut next_artificial = n;
    for (i, row) in std.rows.iter().enumerate() {
        let mut padded = vec![0.0; total + 1];
        padded[..n].copy_from_slice(&row[..n]);
        padded[total] = row[n];
        if needs_artificial[i] {
            padded[next_artificial] = 1.0;
            basis.push(next_artificial);
            next_artificial += 1;
        } else {
            let basic_col = (std.slack_start..n)
                .find(|&j| (row[j] - 1.0).abs() <= tol)
                .unwrap_or(usize::MAX);
            basis.push(basic_col);
        }
        rows.push(padded);
    }

    let mut stats = SolveStats {
        rows: m,
        cols: total,
        ..SolveStats::default()
    };

    // ---- Phase 1 ----
    let mut tableau = Tableau {
        rows,
        width: total,
        cost: {
            let mut c = vec![0.0; total + 1];
            c[n..total].fill(1.0);
            c
        },
        basis,
    };
    // Reduce the cost row over the initial basis (only artificial basics have
    // nonzero phase-1 cost).
    for i in 0..m {
        if tableau.basis[i] >= n {
            let row = tableau.rows[i].clone();
            for (c, r) in tableau.cost.iter_mut().zip(row.iter()) {
                *c -= r;
            }
        }
    }

    if n_artificial > 0 {
        stats.phase1_iterations = tableau.iterate(total, options)?;
        let phase1_obj = -tableau.cost[total];
        if phase1_obj > 1e-6 {
            return Err(LpError::Infeasible);
        }
        // Drive remaining artificials out of the basis.
        let mut redundant_rows: Vec<usize> = Vec::new();
        for i in 0..m {
            if tableau.basis[i] >= n {
                let mut pivot_col = None;
                for j in 0..n {
                    if tableau.rows[i][j].abs() > tol {
                        pivot_col = Some(j);
                        break;
                    }
                }
                match pivot_col {
                    Some(j) => tableau.pivot(i, j),
                    None => redundant_rows.push(i),
                }
            }
        }
        // Remove redundant rows (they are all-zero over structural columns).
        for &i in redundant_rows.iter().rev() {
            tableau.rows.remove(i);
            tableau.basis.remove(i);
        }
    }

    // ---- Phase 2 ----
    let remaining_rows = tableau.rows.len();
    let mut cost = vec![0.0; total + 1];
    cost[..n].copy_from_slice(&std.costs);
    tableau.cost = cost;
    for i in 0..remaining_rows {
        let b = tableau.basis[i];
        let c_b = tableau.cost[b];
        if c_b != 0.0 {
            let row = tableau.rows[i].clone();
            for (c, r) in tableau.cost.iter_mut().zip(row.iter()) {
                *c -= c_b * r;
            }
        }
    }
    // Artificial columns may not re-enter: restrict entering columns to the
    // first `n` columns.
    stats.phase2_iterations = tableau.iterate(n, options)?;

    // Extract standardised variable values.
    let mut x_std = vec![0.0; total];
    for (i, &b) in tableau.basis.iter().enumerate() {
        if b < total {
            x_std[b] = tableau.rows[i][total];
        }
    }

    // Map back to model variables.
    let mut values = vec![0.0; model.vars.len()];
    for (v, map) in std.var_map.iter().enumerate() {
        values[v] = match *map {
            VarMap::Shifted { col, lower } => lower + x_std[col],
            VarMap::Reflected { col, upper } => upper - x_std[col],
            VarMap::Free { pos, neg } => x_std[pos] - x_std[neg],
        };
    }
    let objective = model
        .vars
        .iter()
        .enumerate()
        .map(|(i, v)| v.objective * values[i])
        .sum();

    Ok(Solution {
        objective,
        values,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn simple_minimization_with_unit_bounds() {
        // min x + 2y  s.t. x + y >= 1, 0 <= x,y <= 1  =>  x = 1, y = 0.
        let mut m = Model::minimize();
        let x = m.add_unit_var(1.0);
        let y = m.add_unit_var(2.0);
        m.add_ge([(x, 1.0), (y, 1.0)], 1.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, 1.0);
        assert_close(s.value(x), 1.0);
        assert_close(s.value(y), 0.0);
    }

    #[test]
    fn classic_maximization() {
        // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
        // Optimum 36 at (2, 6).
        let mut m = Model::maximize();
        let x = m.add_nonneg_var(3.0);
        let y = m.add_nonneg_var(5.0);
        m.add_le([(x, 1.0)], 4.0);
        m.add_le([(y, 2.0)], 12.0);
        m.add_le([(x, 3.0), (y, 2.0)], 18.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, 36.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 6.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y  s.t. x + 2y = 4, x - y = 1, x,y >= 0. Solution x=2, y=1.
        let mut m = Model::minimize();
        let x = m.add_nonneg_var(1.0);
        let y = m.add_nonneg_var(1.0);
        m.add_eq([(x, 1.0), (y, 2.0)], 4.0);
        m.add_eq([(x, 1.0), (y, -1.0)], 1.0);
        let s = m.solve().unwrap();
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 1.0);
        assert_close(s.objective, 3.0);
    }

    #[test]
    fn infeasible_model_is_reported() {
        let mut m = Model::minimize();
        let x = m.add_unit_var(1.0);
        m.add_ge([(x, 1.0)], 2.0);
        match m.solve() {
            Err(LpError::Infeasible) => {}
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_model_is_reported() {
        let mut m = Model::maximize();
        let x = m.add_nonneg_var(1.0);
        m.add_ge([(x, 1.0)], 1.0);
        match m.solve() {
            Err(LpError::Unbounded) => {}
            other => panic!("expected Unbounded, got {other:?}"),
        }
    }

    #[test]
    fn negative_lower_bounds_are_shifted() {
        // min x  s.t. x >= -3 (bound), x + y = 0, y in [0, 2]. Optimum x = -2? No:
        // y in [0,2], x = -y, so x in [-2, 0]; min x = -2.
        let mut m = Model::minimize();
        let x = m.add_var(-3.0, f64::INFINITY, 1.0);
        let y = m.add_var(0.0, 2.0, 0.0);
        m.add_eq([(x, 1.0), (y, 1.0)], 0.0);
        let s = m.solve().unwrap();
        assert_close(s.value(x), -2.0);
        assert_close(s.value(y), 2.0);
    }

    #[test]
    fn free_variables_are_split() {
        // min |style| objective via free variable: min z s.t. z >= x - 5,
        // z >= 5 - x, x free fixed by x = 3 -> z = 2.
        let mut m = Model::minimize();
        let x = m.add_var(f64::NEG_INFINITY, f64::INFINITY, 0.0);
        let z = m.add_nonneg_var(1.0);
        m.add_eq([(x, 1.0)], 3.0);
        m.add_ge([(z, 1.0), (x, -1.0)], -5.0);
        m.add_ge([(z, 1.0), (x, 1.0)], 5.0);
        let s = m.solve().unwrap();
        assert_close(s.value(x), 3.0);
        assert_close(s.value(z), 2.0);
    }

    #[test]
    fn upper_bounded_only_variable_is_reflected() {
        // max x with x <= 7 and no lower bound, subject to x >= 1: optimum 7.
        let mut m = Model::maximize();
        let x = m.add_var(f64::NEG_INFINITY, 7.0, 1.0);
        m.add_ge([(x, 1.0)], 1.0);
        let s = m.solve().unwrap();
        assert_close(s.value(x), 7.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Highly degenerate: many redundant constraints through the origin.
        let mut m = Model::minimize();
        let x = m.add_nonneg_var(-1.0);
        let y = m.add_nonneg_var(-1.0);
        for k in 1..=10 {
            m.add_le([(x, k as f64), (y, 1.0)], k as f64);
        }
        m.add_le([(x, 1.0)], 1.0);
        m.add_le([(y, 1.0)], 1.0);
        let s = m.solve().unwrap();
        // Optimum at x = 1 - something... verify feasibility and objective by
        // checking against a grid search.
        let mut best = f64::INFINITY;
        let steps = 200;
        for i in 0..=steps {
            for j in 0..=steps {
                let xx = i as f64 / steps as f64;
                let yy = j as f64 / steps as f64;
                let feasible = (1..=10).all(|k| k as f64 * xx + yy <= k as f64 + 1e-9);
                if feasible {
                    best = best.min(-xx - yy);
                }
            }
        }
        assert!(s.objective <= best + 1e-6);
    }

    #[test]
    fn hinge_epigraph_minimization_matches_closed_form() {
        // The shape used by the efficient mechanism: minimize a sum of hinge
        // functions over the capped simplex.
        //   min v1 + v2
        //   v1 >= f0 + f1 - 1, v2 >= f1 + f2 - 1, v >= 0,
        //   f0 + f1 + f2 = 2, 0 <= f <= 1.
        // Put mass on f0 and f2: f = (1, 0, 1) gives v = 0. Optimum 0.
        let mut m = Model::minimize();
        let f: Vec<_> = (0..3).map(|_| m.add_unit_var(0.0)).collect();
        let v1 = m.add_nonneg_var(1.0);
        let v2 = m.add_nonneg_var(1.0);
        m.add_ge([(v1, 1.0), (f[0], -1.0), (f[1], -1.0)], -1.0);
        m.add_ge([(v2, 1.0), (f[1], -1.0), (f[2], -1.0)], -1.0);
        m.add_eq(f.iter().map(|&x| (x, 1.0)), 2.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, 0.0);

        // With |f| = 3 every variable is 1 and both hinges are active.
        let mut m = Model::minimize();
        let f: Vec<_> = (0..3).map(|_| m.add_unit_var(0.0)).collect();
        let v1 = m.add_nonneg_var(1.0);
        let v2 = m.add_nonneg_var(1.0);
        m.add_ge([(v1, 1.0), (f[0], -1.0), (f[1], -1.0)], -1.0);
        m.add_ge([(v2, 1.0), (f[1], -1.0), (f[2], -1.0)], -1.0);
        m.add_eq(f.iter().map(|&x| (x, 1.0)), 3.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn stats_are_populated() {
        let mut m = Model::minimize();
        let x = m.add_unit_var(1.0);
        m.add_ge([(x, 1.0)], 0.5);
        let s = m.solve().unwrap();
        // Presolve dissolves this tiny model entirely; the counters say so.
        assert_eq!(s.stats.presolve_rows_removed, 1);
        assert_eq!(s.stats.presolve_cols_removed, 1);
        let raw = m
            .solve_with(&SimplexOptions {
                presolve: false,
                ..SimplexOptions::default()
            })
            .unwrap();
        assert!(raw.stats.rows >= 1);
        assert!(raw.stats.cols >= 1);
        assert_close(raw.objective, s.objective);
    }

    #[test]
    fn empty_model_solves_trivially() {
        let m = Model::minimize();
        let s = m.solve().unwrap();
        assert_close(s.objective, 0.0);
        assert!(s.values.is_empty());
    }

    #[test]
    fn fixed_variable_via_equal_bounds() {
        let mut m = Model::minimize();
        let x = m.add_var(2.5, 2.5, 1.0);
        let y = m.add_unit_var(1.0);
        m.add_ge([(x, 1.0), (y, 1.0)], 3.0);
        let s = m.solve().unwrap();
        assert_close(s.value(x), 2.5);
        assert_close(s.value(y), 0.5);
    }
}
