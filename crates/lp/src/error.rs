//! Error type of the LP solver.

use std::fmt;

/// Errors reported by [`crate::Model::solve`].
#[derive(Clone, Debug, PartialEq)]
pub enum LpError {
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// A variable was declared with `lower > upper` or a non-finite bound
    /// combination the solver does not support.
    InvalidBounds {
        /// Index of the offending variable.
        var: usize,
    },
    /// A constraint references a variable that does not belong to the model.
    UnknownVariable {
        /// Index of the offending variable.
        var: usize,
    },
    /// The iteration limit was exceeded (indicates cycling or an extremely
    /// degenerate instance).
    IterationLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// A non-finite coefficient or right-hand side was supplied.
    NonFiniteInput,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "the linear program is infeasible"),
            LpError::Unbounded => write!(f, "the linear program is unbounded"),
            LpError::InvalidBounds { var } => {
                write!(f, "variable {var} has invalid bounds")
            }
            LpError::UnknownVariable { var } => {
                write!(f, "constraint references unknown variable {var}")
            }
            LpError::IterationLimit { limit } => {
                write!(f, "simplex iteration limit of {limit} exceeded")
            }
            LpError::NonFiniteInput => write!(f, "model contains a non-finite coefficient"),
        }
    }
}

impl std::error::Error for LpError {}
