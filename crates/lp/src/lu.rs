//! Sparse LU factorization of the simplex basis with Markowitz pivoting.
//!
//! The factorization `B = P⁻¹·L·U·Q⁻¹` is built by Gaussian elimination over
//! a working sparse copy of the basis matrix. Pivots are chosen by the
//! classical **Markowitz rule**: among numerically acceptable entries, pick
//! one minimising `(r_i − 1)(c_j − 1)` (row count × column count of the
//! active submatrix), which bounds the fill-in a pivot can create.
//! *Threshold pivoting* keeps the choice stable: an entry is acceptable only
//! when its magnitude is at least [`SimplexOptions::markowitz_threshold`]
//! times the largest magnitude in its column. Ties break deterministically on
//! (Markowitz cost, column, row), so the same basis always factors the same
//! way — part of the crate-wide bit-identity discipline.
//!
//! `L` is stored as the ordered list of elimination operations
//! `z[target] −= factor · z[pivot_row]` (applied forward for FTRAN, reversed
//! and transposed for BTRAN); `U` is stored by pivot order as sparse rows
//! over pivot positions plus a diagonal. Both permutations are kept as plain
//! vectors. Everything is immutable after construction, so a factorization
//! can be shared across warm-started solves behind an [`std::sync::Arc`].
//!
//! Across pivots the factorization is maintained by a **bounded eta file**
//! (product-form updates, the update scheme Forrest–Tomlin refines): each
//! basis change appends one sparse [`Eta`] transformation instead of
//! refactorizing. Applying `k` etas costs `O(Σ nnz(η))`, so the file is
//! bounded by [`SimplexOptions::update_cap`]; hitting the cap (or the
//! drift-gated residual check in [`crate::revised`]) triggers a fresh
//! factorization and an empty eta file.

use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use crate::sparse::CscMatrix;

/// Absolute floor on accepted pivot magnitudes; mirrors the singularity
/// guard of the dense refactorization (`PIVOT_TOL · 1e-2`).
const ABS_PIVOT_TOL: f64 = 1e-9;

/// How many threshold-acceptable candidate columns one Markowitz scan
/// examines before settling for the best seen (bounded Markowitz search).
const MAX_CANDIDATES: usize = 16;

/// An immutable sparse LU factorization of one basis matrix.
#[derive(Debug)]
pub(crate) struct LuFactors {
    /// Dimension of the (square) basis.
    m: usize,
    /// Elimination operations in application order:
    /// `(target_row, pivot_row, factor)` meaning `z[target] −= factor · z[pivot_row]`.
    l_ops: Vec<(u32, u32, f64)>,
    /// Original row index of the `t`-th pivot.
    pivot_rows: Vec<u32>,
    /// Basis-slot (local column) index of the `t`-th pivot.
    pivot_cols: Vec<u32>,
    /// Off-diagonal entries of the `t`-th row of `U`, as
    /// `(pivot_position, value)` with `pivot_position > t`, sorted.
    u_rows: Vec<Vec<(u32, f64)>>,
    /// Diagonal of `U` in pivot order.
    diag: Vec<f64>,
}

impl LuFactors {
    /// The factorization of the identity basis (the all-slack cold start):
    /// trivial permutations, unit diagonal, no elimination ops. `O(m)`.
    pub(crate) fn identity(m: usize) -> Self {
        LuFactors {
            m,
            l_ops: Vec::new(),
            pivot_rows: (0..m as u32).collect(),
            pivot_cols: (0..m as u32).collect(),
            u_rows: vec![Vec::new(); m],
            diag: vec![1.0; m],
        }
    }

    /// Factorizes the basis matrix whose columns are `a[:, basic[k]]`.
    /// Fails (`Err`) when the matrix is structurally or numerically singular.
    pub(crate) fn factorize(a: &CscMatrix, basic: &[usize], threshold: f64) -> Result<Self, ()> {
        let m = basic.len();
        let threshold = threshold.clamp(0.0, 1.0);

        // Working copy: row-wise value maps plus per-column row sets, both
        // over basis slots 0..m. Active rows/columns shrink as pivots are
        // eliminated.
        let mut rows: Vec<HashMap<u32, f64>> = vec![HashMap::new(); m];
        let mut cols: Vec<HashSet<u32>> = vec![HashSet::new(); m];
        for (slot, &j) in basic.iter().enumerate() {
            for (i, v) in a.col(j) {
                rows[i].insert(slot as u32, v);
                cols[slot].insert(i as u32);
            }
        }
        // Active columns ordered by (count, column): the Markowitz scan walks
        // this set in ascending count order, which is deterministic.
        let mut queue: BTreeSet<(u32, u32)> =
            (0..m).map(|c| (cols[c].len() as u32, c as u32)).collect();

        let mut l_ops: Vec<(u32, u32, f64)> = Vec::new();
        let mut pivot_rows: Vec<u32> = Vec::with_capacity(m);
        let mut pivot_cols: Vec<u32> = Vec::with_capacity(m);
        let mut u_raw: Vec<Vec<(u32, f64)>> = Vec::with_capacity(m);
        let mut diag: Vec<f64> = Vec::with_capacity(m);

        for _t in 0..m {
            // --- Markowitz pivot selection with threshold acceptance. ---
            let mut best: Option<(u64, u32, u32, f64)> = None; // (cost, col, row, value)
            let mut examined = 0usize;
            for &(cnt, c) in queue.iter() {
                if cnt == 0 {
                    // An active column with no active entries: singular.
                    return Err(());
                }
                let col_set = &cols[c as usize];
                let mut colmax = 0.0f64;
                for &i in col_set {
                    colmax = colmax.max(rows[i as usize][&c].abs());
                }
                if colmax < ABS_PIVOT_TOL {
                    // Numerically empty column; maybe another column works.
                    continue;
                }
                // Best acceptable row in this column: smallest row count,
                // then smallest row index.
                let mut cand: Option<(u32, u32, f64)> = None; // (row_count, row, value)
                for &i in col_set {
                    let v = rows[i as usize][&c];
                    if v.abs() < threshold * colmax || v.abs() < ABS_PIVOT_TOL {
                        continue;
                    }
                    let rc = rows[i as usize].len() as u32;
                    match cand {
                        None => cand = Some((rc, i, v)),
                        Some((brc, bi, _)) => {
                            if (rc, i) < (brc, bi) {
                                cand = Some((rc, i, v));
                            }
                        }
                    }
                }
                let Some((rc, i, v)) = cand else { continue };
                let cost = (cnt as u64 - 1) * (rc.saturating_sub(1)) as u64;
                let better = match best {
                    None => true,
                    Some((bcost, bcol, brow, _)) => (cost, c, i) < (bcost, bcol, brow),
                };
                if better {
                    best = Some((cost, c, i, v));
                }
                examined += 1;
                // A zero-cost pivot (singleton column or singleton row) is
                // optimal; otherwise cap the scan.
                if cost == 0 || examined >= MAX_CANDIDATES {
                    break;
                }
            }
            let Some((_, c, r, pv)) = best else {
                return Err(());
            };

            pivot_rows.push(r);
            pivot_cols.push(c);
            diag.push(pv);

            // The pivot row (minus the pivot itself) becomes a row of U.
            // Sorted for deterministic arithmetic downstream.
            let mut urow: Vec<(u32, f64)> = rows[r as usize]
                .iter()
                .filter(|&(&cc, _)| cc != c)
                .map(|(&cc, &vv)| (cc, vv))
                .collect();
            urow.sort_unstable_by_key(|e| e.0);

            // Eliminate the pivot column from every other active row.
            let mut targets: Vec<u32> = cols[c as usize]
                .iter()
                .copied()
                .filter(|&i| i != r)
                .collect();
            targets.sort_unstable();
            for &i in &targets {
                let aic = rows[i as usize]
                    .remove(&c)
                    .expect("column set and row map agree");
                let f = aic / pv;
                l_ops.push((i, r, f));
                if f != 0.0 {
                    for &(cc, vv) in &urow {
                        match rows[i as usize].entry(cc) {
                            Entry::Occupied(mut o) => {
                                let nv = *o.get() - f * vv;
                                if nv == 0.0 {
                                    o.remove();
                                    let old = cols[cc as usize].len() as u32;
                                    cols[cc as usize].remove(&i);
                                    queue.remove(&(old, cc));
                                    queue.insert((old - 1, cc));
                                } else {
                                    *o.get_mut() = nv;
                                }
                            }
                            Entry::Vacant(vac) => {
                                vac.insert(-f * vv);
                                let old = cols[cc as usize].len() as u32;
                                cols[cc as usize].insert(i);
                                queue.remove(&(old, cc));
                                queue.insert((old + 1, cc));
                            }
                        }
                    }
                }
            }

            // Deactivate the pivot row and column.
            for &(cc, _) in &urow {
                let old = cols[cc as usize].len() as u32;
                cols[cc as usize].remove(&r);
                queue.remove(&(old, cc));
                queue.insert((old - 1, cc));
            }
            queue.remove(&(cols[c as usize].len() as u32, c));
            cols[c as usize] = HashSet::new();
            rows[r as usize] = HashMap::new();
            u_raw.push(urow);
        }

        // Remap U columns from basis slots to pivot positions.
        let mut pos = vec![u32::MAX; m];
        for (t, &c) in pivot_cols.iter().enumerate() {
            pos[c as usize] = t as u32;
        }
        let u_rows: Vec<Vec<(u32, f64)>> = u_raw
            .into_iter()
            .map(|row| {
                let mut mapped: Vec<(u32, f64)> =
                    row.into_iter().map(|(c, v)| (pos[c as usize], v)).collect();
                mapped.sort_unstable_by_key(|e| e.0);
                mapped
            })
            .collect();

        Ok(LuFactors {
            m,
            l_ops,
            pivot_rows,
            pivot_cols,
            u_rows,
            diag,
        })
    }

    /// Stored nonzeros of the factorization (L ops + U entries + diagonal).
    pub(crate) fn nnz(&self) -> usize {
        self.l_ops.len() + self.u_rows.iter().map(Vec::len).sum::<usize>() + self.diag.len()
    }

    /// Solves `B·x = z` in place (`z` enters as the right-hand side, leaves
    /// as the solution).
    fn ftran_in_place(&self, z: &mut [f64]) {
        debug_assert_eq!(z.len(), self.m);
        for &(tr, pr, f) in &self.l_ops {
            let zp = z[pr as usize];
            if zp != 0.0 {
                z[tr as usize] -= f * zp;
            }
        }
        // Backward substitution through U, in pivot order.
        let mut xp = vec![0.0; self.m];
        for t in (0..self.m).rev() {
            let mut s = z[self.pivot_rows[t] as usize];
            for &(sp, v) in &self.u_rows[t] {
                let xv = xp[sp as usize];
                if xv != 0.0 {
                    s -= v * xv;
                }
            }
            xp[t] = s / self.diag[t];
        }
        for t in 0..self.m {
            z[self.pivot_cols[t] as usize] = xp[t];
        }
    }

    /// Solves `Bᵀ·y = c` in place.
    fn btran_in_place(&self, c: &mut [f64]) {
        debug_assert_eq!(c.len(), self.m);
        // Gather through the column permutation, then forward-solve Uᵀ by
        // scattering each pivot's row of U ahead.
        let mut w = vec![0.0; self.m];
        for t in 0..self.m {
            w[t] = c[self.pivot_cols[t] as usize];
        }
        for t in 0..self.m {
            let wt = w[t] / self.diag[t];
            w[t] = wt;
            if wt != 0.0 {
                for &(sp, v) in &self.u_rows[t] {
                    w[sp as usize] -= v * wt;
                }
            }
        }
        for t in 0..self.m {
            c[self.pivot_rows[t] as usize] = w[t];
        }
        // Transposed elimination ops, in reverse order.
        for &(tr, pr, f) in self.l_ops.iter().rev() {
            let yt = c[tr as usize];
            if yt != 0.0 {
                c[pr as usize] -= f * yt;
            }
        }
    }
}

/// One product-form update: the sparse elementary transformation `E` with
/// `B_new⁻¹ = E · B_old⁻¹` after the entering column (FTRAN image `w`)
/// replaced the basic column of `row`.
#[derive(Clone, Debug)]
pub(crate) struct Eta {
    row: u32,
    pivot: f64,
    /// Off-pivot nonzeros of `w`, by row index, sorted.
    entries: Vec<(u32, f64)>,
}

impl Eta {
    /// Builds the eta from the dense FTRAN image of the entering column.
    pub(crate) fn from_ftran(row: usize, w: &[f64]) -> Eta {
        let entries = w
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != row && v != 0.0)
            .map(|(i, &v)| (i as u32, v))
            .collect();
        Eta {
            row: row as u32,
            pivot: w[row],
            entries,
        }
    }

    /// Applies `E` to a column vector: `v_r ← v_r / w_r`, then
    /// `v_i ← v_i − w_i · v_r` for `i ≠ r`.
    fn apply_ftran(&self, z: &mut [f64]) {
        let zr = z[self.row as usize];
        if zr == 0.0 {
            return;
        }
        let t = zr / self.pivot;
        z[self.row as usize] = t;
        for &(i, wi) in &self.entries {
            z[i as usize] -= wi * t;
        }
    }

    /// Applies `Eᵀ` to a row vector:
    /// `c_r ← (c_r − Σ_{i≠r} c_i·w_i) / w_r`.
    fn apply_btran(&self, y: &mut [f64]) {
        let mut s = y[self.row as usize];
        for &(i, wi) in &self.entries {
            s -= wi * y[i as usize];
        }
        y[self.row as usize] = s / self.pivot;
    }

    /// Stored nonzeros.
    fn nnz(&self) -> usize {
        self.entries.len() + 1
    }
}

/// The sparse-LU basis representation carried through solves: an immutable
/// shared base factorization plus this solve's private eta file. Cloning is
/// `O(etas)` — the base is behind an [`Arc`] — which is what makes `Basis`
/// hand-off along a warm-started chain O(1) instead of O(m²).
#[derive(Clone, Debug)]
pub(crate) struct LuFactor {
    base: Arc<LuFactors>,
    etas: Vec<Eta>,
}

impl LuFactor {
    /// Identity basis (cold start).
    pub(crate) fn identity(m: usize) -> Self {
        LuFactor {
            base: Arc::new(LuFactors::identity(m)),
            etas: Vec::new(),
        }
    }

    /// Fresh factorization of the given basis columns; empty eta file.
    pub(crate) fn factorize(a: &CscMatrix, basic: &[usize], threshold: f64) -> Result<Self, ()> {
        Ok(LuFactor {
            base: Arc::new(LuFactors::factorize(a, basic, threshold)?),
            etas: Vec::new(),
        })
    }

    /// Dimension of the factored basis.
    pub(crate) fn dim(&self) -> usize {
        self.base.m
    }

    /// `B⁻¹ · r` for a dense right-hand side (consumed and reused).
    pub(crate) fn solve_vec(&self, mut r: Vec<f64>) -> Vec<f64> {
        self.base.ftran_in_place(&mut r);
        for eta in &self.etas {
            eta.apply_ftran(&mut r);
        }
        r
    }

    /// `cᵀ · B⁻¹` for a dense cost vector (consumed and reused).
    pub(crate) fn btran_vec(&self, mut c: Vec<f64>) -> Vec<f64> {
        for eta in self.etas.iter().rev() {
            eta.apply_btran(&mut c);
        }
        self.base.btran_in_place(&mut c);
        c
    }

    /// Appends the product-form update for a pivot on `row` with FTRAN
    /// image `w`.
    pub(crate) fn update(&mut self, row: usize, w: &[f64]) {
        self.etas.push(Eta::from_ftran(row, w));
    }

    /// Etas accumulated since the base factorization.
    pub(crate) fn pending_updates(&self) -> usize {
        self.etas.len()
    }

    /// Total stored nonzeros (base factors + eta file).
    pub(crate) fn nnz(&self) -> usize {
        self.base.nnz() + self.etas.iter().map(Eta::nnz).sum::<usize>()
    }

    /// Whether two factors share the same base factorization (used by the
    /// O(1) hand-off regression tests).
    #[cfg(test)]
    pub(crate) fn shares_base_with(&self, other: &LuFactor) -> bool {
        Arc::ptr_eq(&self.base, &other.base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense reference solve of `B·x = rhs` by Gaussian elimination.
    fn dense_solve(b: &[Vec<f64>], rhs: &[f64]) -> Vec<f64> {
        let m = rhs.len();
        let mut aug: Vec<Vec<f64>> = (0..m)
            .map(|i| {
                let mut row: Vec<f64> = (0..m).map(|j| b[i][j]).collect();
                row.push(rhs[i]);
                row
            })
            .collect();
        for col in 0..m {
            let piv = (col..m)
                .max_by(|&a, &b| aug[a][col].abs().total_cmp(&aug[b][col].abs()))
                .unwrap();
            aug.swap(col, piv);
            let p = aug[col][col];
            assert!(p.abs() > 1e-12, "singular test matrix");
            for v in &mut aug[col][col..=m] {
                *v /= p;
            }
            for i in 0..m {
                if i != col {
                    let f = aug[i][col];
                    if f != 0.0 {
                        let pivot_row = aug[col].clone();
                        for (v, pv) in aug[i][col..=m].iter_mut().zip(&pivot_row[col..=m]) {
                            *v -= f * pv;
                        }
                    }
                }
            }
        }
        (0..m).map(|i| aug[i][m]).collect()
    }

    /// A deterministic sparse-ish test matrix with a strong diagonal.
    fn test_matrix(m: usize) -> (CscMatrix, Vec<Vec<f64>>) {
        let mut triplets = Vec::new();
        let mut dense = vec![vec![0.0; m]; m];
        let mut state = 0x9e37_79b9_u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 16) % 7) as f64 - 3.0
        };
        for (i, row) in dense.iter_mut().enumerate() {
            for (j, slot) in row.iter_mut().enumerate() {
                let v = if i == j {
                    4.0 + next().abs()
                } else if (i + 2 * j) % 3 == 0 {
                    next()
                } else {
                    0.0
                };
                if v != 0.0 {
                    triplets.push((i, j, v));
                    *slot = v;
                }
            }
        }
        (CscMatrix::from_triplets(m, m, &triplets), dense)
    }

    #[test]
    fn ftran_and_btran_match_a_dense_solve() {
        let m = 9;
        let (a, dense) = test_matrix(m);
        let basic: Vec<usize> = (0..m).collect();
        let lu = LuFactor::factorize(&a, &basic, 0.1).unwrap();
        let rhs: Vec<f64> = (0..m).map(|i| (i as f64) - 3.0).collect();
        let x = lu.solve_vec(rhs.clone());
        let x_ref = dense_solve(&dense, &rhs);
        for (a, b) in x.iter().zip(&x_ref) {
            assert!((a - b).abs() < 1e-9, "ftran {a} vs dense {b}");
        }
        // BTRAN solves the transposed system.
        let y = lu.btran_vec(rhs.clone());
        let transposed: Vec<Vec<f64>> = (0..m)
            .map(|i| (0..m).map(|j| dense[j][i]).collect())
            .collect();
        let y_ref = dense_solve(&transposed, &rhs);
        for (a, b) in y.iter().zip(&y_ref) {
            assert!((a - b).abs() < 1e-9, "btran {a} vs dense {b}");
        }
    }

    #[test]
    fn identity_factor_is_a_no_op() {
        let lu = LuFactor::identity(5);
        let v = vec![1.0, -2.0, 0.0, 4.0, 0.5];
        assert_eq!(lu.solve_vec(v.clone()), v);
        assert_eq!(lu.btran_vec(v.clone()), v);
        assert_eq!(lu.pending_updates(), 0);
    }

    #[test]
    fn eta_updates_track_a_column_replacement() {
        let m = 7;
        let (a, mut dense) = test_matrix(m);
        let basic: Vec<usize> = (0..m).collect();
        let mut lu = LuFactor::factorize(&a, &basic, 0.1).unwrap();

        // Replace the basic column of row 3 with a new column: B_new differs
        // from B in column 3 only. The entering column in basis coordinates
        // is w = B⁻¹·a_new.
        let entering: Vec<f64> = (0..m)
            .map(|i| if i % 2 == 0 { 1.0 } else { -0.5 })
            .collect();
        let w = lu.solve_vec(entering.clone());
        lu.update(3, &w);
        assert_eq!(lu.pending_updates(), 1);
        for (i, row) in dense.iter_mut().enumerate() {
            row[3] = entering[i];
        }

        let rhs: Vec<f64> = (0..m).map(|i| 1.0 + i as f64).collect();
        let x = lu.solve_vec(rhs.clone());
        let x_ref = dense_solve(&dense, &rhs);
        for (a, b) in x.iter().zip(&x_ref) {
            assert!((a - b).abs() < 1e-8, "eta ftran {a} vs dense {b}");
        }
        let y = lu.btran_vec(rhs.clone());
        let transposed: Vec<Vec<f64>> = (0..m)
            .map(|i| (0..m).map(|j| dense[j][i]).collect())
            .collect();
        let y_ref = dense_solve(&transposed, &rhs);
        for (a, b) in y.iter().zip(&y_ref) {
            assert!((a - b).abs() < 1e-8, "eta btran {a} vs dense {b}");
        }
    }

    #[test]
    fn a_singular_basis_is_rejected() {
        // Two identical columns.
        let a =
            CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 2.0), (0, 1, 1.0), (1, 1, 2.0)]);
        assert!(LuFactor::factorize(&a, &[0, 1], 0.1).is_err());
        // A structurally empty column.
        let b = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 2.0)]);
        assert!(LuFactor::factorize(&b, &[0, 1], 0.1).is_err());
    }

    #[test]
    fn permuted_slack_heavy_bases_factor_without_fill() {
        // A basis that is mostly identity columns plus a dense-ish corner —
        // the shape warm mechanism bases take. Singleton columns must be
        // eliminated first (Markowitz cost 0) producing zero elimination ops
        // for them.
        let m = 20;
        let mut triplets = Vec::new();
        for i in 0..m - 2 {
            triplets.push((i, i, 1.0));
        }
        // Two structural columns coupling the last rows.
        triplets.push((m - 2, m - 2, 2.0));
        triplets.push((m - 1, m - 2, 1.0));
        triplets.push((0, m - 2, 1.0));
        triplets.push((m - 2, m - 1, -1.0));
        triplets.push((m - 1, m - 1, 1.0));
        let a = CscMatrix::from_triplets(m, m, &triplets);
        let basic: Vec<usize> = (0..m).collect();
        let lu = LuFactor::factorize(&a, &basic, 0.1).unwrap();
        // Identity columns contribute no L ops; only the 2×2 corner can.
        let rhs: Vec<f64> = (0..m).map(|i| i as f64 * 0.5 - 1.0).collect();
        let x = lu.solve_vec(rhs.clone());
        // Verify B·x = rhs directly.
        let mut prod = vec![0.0; m];
        for &(i, j, v) in &triplets {
            prod[i] += v * x[j];
        }
        for (p, r) in prod.iter().zip(&rhs) {
            assert!((p - r).abs() < 1e-9);
        }
    }
}
