//! LP model construction.
//!
//! A [`Model`] owns a set of bounded variables, a linear objective and a list
//! of linear constraints. [`Model::solve`] standardises the model and runs
//! the backend selected by [`crate::simplex::SimplexOptions`] (the revised
//! simplex by default); [`Model::prepare`] standardises once into a
//! [`crate::PreparedLp`] for repeated warm-started solves.

use crate::error::LpError;
use crate::solution::Solution;

/// Optimisation direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sense {
    /// Minimise the objective.
    Minimize,
    /// Maximise the objective.
    Maximize,
}

/// A handle to a model variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// The index of the variable inside its model.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Relational operator of a constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

/// A linear constraint `Σ aᵢxᵢ (≤|≥|=) b`.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// Nonzero terms `(variable, coefficient)`.
    pub terms: Vec<(Var, f64)>,
    /// Relational operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

#[derive(Clone, Debug)]
pub(crate) struct VariableDef {
    pub lower: f64,
    pub upper: f64,
    pub objective: f64,
}

/// A linear program.
#[derive(Clone, Debug)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<VariableDef>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Model {
    /// A new, empty model with the given optimisation direction.
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Convenience constructor for a minimisation model.
    pub fn minimize() -> Self {
        Model::new(Sense::Minimize)
    }

    /// Convenience constructor for a maximisation model.
    pub fn maximize() -> Self {
        Model::new(Sense::Maximize)
    }

    /// Adds a variable with bounds `[lower, upper]` and the given objective
    /// coefficient. Use `f64::NEG_INFINITY` / `f64::INFINITY` for unbounded
    /// sides.
    pub fn add_var(&mut self, lower: f64, upper: f64, objective: f64) -> Var {
        let v = Var(self.vars.len());
        self.vars.push(VariableDef {
            lower,
            upper,
            objective,
        });
        v
    }

    /// Adds a nonnegative variable `x ≥ 0` with the given objective
    /// coefficient.
    pub fn add_nonneg_var(&mut self, objective: f64) -> Var {
        self.add_var(0.0, f64::INFINITY, objective)
    }

    /// Adds a `[0, 1]`-bounded variable with the given objective coefficient.
    pub fn add_unit_var(&mut self, objective: f64) -> Var {
        self.add_var(0.0, 1.0, objective)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Adds a general constraint. Terms naming the same variable more than
    /// once are merged by summing their coefficients (first occurrence keeps
    /// its position), so `x + x ≤ 1` and `2x ≤ 1` build the same row — no
    /// standardization path can double-count or overwrite a duplicate.
    pub fn add_constraint<I>(&mut self, terms: I, op: ConstraintOp, rhs: f64)
    where
        I: IntoIterator<Item = (Var, f64)>,
    {
        // Hybrid merge: a linear scan while the row is small (the typical
        // hinge row has a handful of terms — no allocation), switching to a
        // hash index once it grows (mass-tie rows have |P| terms and must
        // not go quadratic).
        const SCAN_LIMIT: usize = 16;
        let mut merged: Vec<(Var, f64)> = Vec::new();
        let mut position: Option<std::collections::HashMap<usize, usize>> = None;
        for (var, coeff) in terms {
            let slot = match &position {
                Some(map) => map.get(&var.index()).copied(),
                None => merged.iter().position(|(v, _)| *v == var),
            };
            match slot {
                Some(k) => merged[k].1 += coeff,
                None => {
                    if let Some(map) = &mut position {
                        map.insert(var.index(), merged.len());
                    }
                    merged.push((var, coeff));
                    if position.is_none() && merged.len() >= SCAN_LIMIT {
                        position = Some(
                            merged
                                .iter()
                                .enumerate()
                                .map(|(k, (v, _))| (v.index(), k))
                                .collect(),
                        );
                    }
                }
            }
        }
        self.constraints.push(Constraint {
            terms: merged,
            op,
            rhs,
        });
    }

    /// Adds `Σ aᵢxᵢ ≤ b`.
    pub fn add_le<I>(&mut self, terms: I, rhs: f64)
    where
        I: IntoIterator<Item = (Var, f64)>,
    {
        self.add_constraint(terms, ConstraintOp::Le, rhs);
    }

    /// Adds `Σ aᵢxᵢ ≥ b`.
    pub fn add_ge<I>(&mut self, terms: I, rhs: f64)
    where
        I: IntoIterator<Item = (Var, f64)>,
    {
        self.add_constraint(terms, ConstraintOp::Ge, rhs);
    }

    /// Adds `Σ aᵢxᵢ = b`.
    pub fn add_eq<I>(&mut self, terms: I, rhs: f64)
    where
        I: IntoIterator<Item = (Var, f64)>,
    {
        self.add_constraint(terms, ConstraintOp::Eq, rhs);
    }

    /// Changes the objective coefficient of a variable.
    pub fn set_objective(&mut self, var: Var, coefficient: f64) {
        self.vars[var.0].objective = coefficient;
    }

    /// Solves the model with the default simplex options.
    pub fn solve(&self) -> Result<Solution, LpError> {
        crate::simplex::solve(self, &crate::simplex::SimplexOptions::default())
    }

    /// Solves with explicit solver options.
    pub fn solve_with(
        &self,
        options: &crate::simplex::SimplexOptions,
    ) -> Result<Solution, LpError> {
        crate::simplex::solve(self, options)
    }

    /// Standardizes the model once into a [`crate::PreparedLp`] for repeated
    /// (warm-started) solves under right-hand-side or objective mutation.
    pub fn prepare(&self) -> Result<crate::PreparedLp, LpError> {
        crate::PreparedLp::new(self)
    }

    pub(crate) fn validate(&self) -> Result<(), LpError> {
        for (i, v) in self.vars.iter().enumerate() {
            if v.lower.is_nan() || v.upper.is_nan() || !v.objective.is_finite() {
                return Err(LpError::NonFiniteInput);
            }
            if v.lower > v.upper {
                return Err(LpError::InvalidBounds { var: i });
            }
        }
        for c in &self.constraints {
            if !c.rhs.is_finite() {
                return Err(LpError::NonFiniteInput);
            }
            for &(v, coeff) in &c.terms {
                if v.0 >= self.vars.len() {
                    return Err(LpError::UnknownVariable { var: v.0 });
                }
                if !coeff.is_finite() {
                    return Err(LpError::NonFiniteInput);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_accumulates_vars_and_constraints() {
        let mut m = Model::minimize();
        let x = m.add_unit_var(1.0);
        let y = m.add_nonneg_var(-1.0);
        m.add_le([(x, 1.0), (y, 2.0)], 5.0);
        m.add_eq([(y, 1.0)], 2.0);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 2);
        assert_eq!(x.index(), 0);
        assert_eq!(y.index(), 1);
    }

    #[test]
    fn duplicate_terms_are_merged_at_insertion() {
        // x + x + y − x ≤ 1 must become x + y ≤ 1 — on both backends, the
        // duplicate must neither double-count nor overwrite.
        let mut m = Model::maximize();
        let x = m.add_unit_var(1.0);
        let y = m.add_unit_var(1.0);
        m.add_le([(x, 1.0), (x, 1.0), (y, 1.0), (x, -1.0)], 1.0);
        assert_eq!(m.constraints[0].terms, vec![(x, 1.0), (y, 1.0)]);
        let revised = m.solve().unwrap();
        let dense = m
            .solve_with(&crate::simplex::SimplexOptions {
                backend: crate::simplex::SolverBackend::DenseTableau,
                ..Default::default()
            })
            .unwrap();
        assert!((revised.objective - 1.0).abs() < 1e-7);
        assert!((dense.objective - 1.0).abs() < 1e-7);

        // Full cancellation leaves a zero-coefficient term in the row (the
        // CSC standardization drops exact zeros; the dense tableau stores
        // them harmlessly).
        let mut m = Model::minimize();
        let x = m.add_unit_var(-1.0);
        let y = m.add_unit_var(0.0);
        m.add_le([(x, 2.0), (x, -2.0), (y, 1.0)], 0.5);
        assert_eq!(m.constraints[0].terms, vec![(x, 0.0), (y, 1.0)]);
        let s = m.solve().unwrap();
        assert!((s.value(x) - 1.0).abs() < 1e-7, "x is unconstrained");
    }

    #[test]
    fn validation_rejects_bad_bounds() {
        let mut m = Model::minimize();
        m.add_var(2.0, 1.0, 0.0);
        assert_eq!(m.validate(), Err(LpError::InvalidBounds { var: 0 }));
    }

    #[test]
    fn validation_rejects_unknown_variables() {
        let mut a = Model::minimize();
        let _x = a.add_nonneg_var(1.0);
        let mut b = Model::minimize();
        let y_from_other_model = Var(5);
        b.add_le([(y_from_other_model, 1.0)], 1.0);
        assert_eq!(b.validate(), Err(LpError::UnknownVariable { var: 5 }));
    }

    #[test]
    fn validation_rejects_non_finite_input() {
        let mut m = Model::minimize();
        let x = m.add_nonneg_var(1.0);
        m.add_le([(x, f64::NAN)], 1.0);
        assert_eq!(m.validate(), Err(LpError::NonFiniteInput));
    }
}
