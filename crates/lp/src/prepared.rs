//! Standardize-once / solve-many linear programs.
//!
//! [`PreparedLp`] separates the two halves of [`crate::Model::solve`] that
//! the dense tableau fuses: *standardization* (mapping a model with boxed
//! variables and `≤ / ≥ / =` rows onto equality form `Ax = b`,
//! `l ≤ x ≤ u`) happens once, and *solving* can then be repeated after
//! mutating the right-hand side ([`PreparedLp::set_rhs`]) or the objective
//! ([`PreparedLp::set_objective`]) — the mutations the recursive mechanism's
//! `H`/`G` sequence chains need, where consecutive entries differ only in the
//! mass-tie equality `Σ_p f_p = i`.
//!
//! Standard form is deliberately slack-complete: every constraint row gets
//! exactly one slack column (`≤` → `s ∈ [0, ∞)`, `≥` → `s ∈ (−∞, 0]`,
//! `=` → `s ∈ [0, 0]`), so the all-slack basis is always a valid (if
//! possibly infeasible) starting basis with `B = I`, and row `i` of the
//! standardized system is the model's `i`-th constraint verbatim — which is
//! what makes [`PreparedLp::set_rhs`] a plain store. Boxed variables are kept
//! native (no column splits, no extra bound rows): the bounded-variable
//! revised simplex of [`crate::revised`] tracks nonbasic-at-lower /
//! nonbasic-at-upper status instead.
//!
//! Preparation also runs the *RHS-safe* subset of the presolve in
//! `crate::presolve`: variables fixed by their bounds (`l = u`) are
//! substituted out of the matrix at standardization time. This subset is
//! chosen so every later mutation stays a plain store — no rows are removed
//! (so [`PreparedLp::set_rhs`] row indices keep meaning the model's
//! constraints) and nothing depends on objective signs (so
//! [`PreparedLp::set_objective`] cannot invalidate it). The full reduction
//! set (singleton rows/columns, duplicate-column merges) runs only on the
//! solve-once [`crate::Model::solve`] path. Solutions are always reported in
//! the *full* model variable space.
//!
//! A successful solve returns the optimal [`Basis`]; feeding it to
//! [`PreparedLp::solve_warm`] after an RHS step re-enters the simplex from
//! that basis (phase-1-free when the old basis is still primal feasible),
//! which is how a chain of `|P|+1` sequence solves avoids `|P|` cold starts.

use crate::error::LpError;
use crate::lu::LuFactor;
use crate::model::{ConstraintOp, Model, Sense, Var};
use crate::simplex::SimplexOptions;
use crate::solution::Solution;
use crate::sparse::CscMatrix;

/// Where a variable sits relative to the current basis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarStatus {
    /// In the basis; its value is determined by `B⁻¹(b − N x_N)`.
    Basic,
    /// Nonbasic at its (finite) lower bound.
    AtLower,
    /// Nonbasic at its (finite) upper bound.
    AtUpper,
    /// Nonbasic free variable (both bounds infinite), parked at 0.
    Free,
}

/// A simplex basis: which column is basic in each row, plus the bound status
/// of every column. Returned by a solve and accepted by
/// [`PreparedLp::solve_warm`] to continue a chain from the previous optimum.
///
/// A basis returned by a solve also carries the maintained basis
/// factorization of the backend that produced it. Re-entering with it skips
/// the from-scratch refactorization as long as the constraint matrix is
/// unchanged (RHS and objective mutations keep it valid; the factor is
/// fingerprinted against the matrix so a basis fed to a *different* prepared
/// LP silently falls back to refactorizing). The hand-off is O(1): both
/// factor representations share their bulk behind an `Arc`.
#[derive(Clone, Debug)]
pub struct Basis {
    /// Basic column of each row (length = number of rows).
    pub(crate) basic: Vec<usize>,
    /// Status of every standardized column (structural + slack).
    pub(crate) status: Vec<VarStatus>,
    /// The maintained basis factorization, if this basis came out of a solve.
    pub(crate) factor: Option<BasisFactor>,
}

/// A cached basis factorization, tied to the constraint matrix it was
/// factored against.
#[derive(Clone, Debug)]
pub(crate) struct BasisFactor {
    /// The backend-specific factor representation.
    pub(crate) kind: FactorKind,
    /// Fingerprint of the [`CscMatrix`] the factor belongs to.
    pub(crate) fingerprint: u64,
}

/// Which backend produced a carried basis factor. A solve re-entering with a
/// factor from the *other* backend keeps the basis but refactorizes in its
/// own representation.
#[derive(Clone, Debug)]
pub(crate) enum FactorKind {
    /// Dense column-major `B⁻¹` ([`crate::simplex::SolverBackend::Revised`]).
    Dense(crate::revised::DenseFactor),
    /// Sparse Markowitz LU plus eta file
    /// ([`crate::simplex::SolverBackend::SparseLu`]).
    Lu(LuFactor),
}

impl Basis {
    /// Number of basic columns (= rows of the LP it belongs to).
    pub fn num_rows(&self) -> usize {
        self.basic.len()
    }

    /// Number of standardized columns this basis describes.
    pub fn num_cols(&self) -> usize {
        self.status.len()
    }
}

/// The result of a [`PreparedLp`] solve: the solution plus the optimal basis
/// to warm-start the next solve in a chain from.
#[derive(Clone, Debug)]
pub struct PreparedSolution {
    /// The optimal solution (objective in the caller's direction, values per
    /// model variable).
    pub solution: Solution,
    /// The optimal basis.
    pub basis: Basis,
}

/// What became of one model variable under the RHS-safe reduction.
#[derive(Clone, Copy, Debug)]
enum PreparedColFate {
    /// Kept, at this column index of the reduced system.
    Kept(usize),
    /// Fixed by its bounds at this value and substituted out.
    Fixed(f64),
}

/// The RHS-safe reduction record: which variables were fixed out and the
/// per-row RHS offset their substitution produced.
#[derive(Clone, Debug)]
struct PreparedReduction {
    /// Per *model* variable: reduced column index or fixed value.
    fate: Vec<PreparedColFate>,
    /// `Σ a_ij·v_j` over fixed variables, per row — subtracted from every
    /// caller-supplied RHS (at preparation and on each `set_rhs`).
    row_offset: Vec<f64>,
    /// Number of variables fixed out.
    cols_fixed: usize,
}

/// A model standardized once into sparse equality form, ready for repeated
/// (warm-started) solves under RHS / objective mutation.
#[derive(Clone, Debug)]
pub struct PreparedLp {
    /// Rows (= model constraints).
    pub(crate) nrows: usize,
    /// Standardized columns: kept structural variables then one slack per
    /// row.
    pub(crate) ncols: usize,
    /// Kept structural variables (after the RHS-safe reduction).
    pub(crate) nvars: usize,
    /// Structural variables of the *original* model (solutions are reported
    /// in this space).
    nvars_full: usize,
    /// The standardized constraint matrix (slack columns included).
    pub(crate) a: CscMatrix,
    /// Per-column lower bounds.
    pub(crate) lower: Vec<f64>,
    /// Per-column upper bounds.
    pub(crate) upper: Vec<f64>,
    /// Internal minimization costs per column (sign already applied).
    pub(crate) cost: Vec<f64>,
    /// Right-hand side per row (fixed-variable offsets already subtracted).
    pub(crate) b: Vec<f64>,
    /// The caller's objective coefficients (their direction, full variable
    /// space), for reporting.
    user_objective: Vec<f64>,
    /// +1 for minimization, −1 for maximization.
    sign: f64,
    /// The RHS-safe reduction, when any variable was fixed out.
    reduction: Option<PreparedReduction>,
    /// Fingerprint of `a`, fixed at preparation time (RHS and objective
    /// mutations leave the matrix untouched).
    pub(crate) fingerprint: u64,
}

impl PreparedLp {
    /// Standardizes a model. Fails on the same invalid inputs
    /// [`Model::solve`] rejects (bad bounds, unknown variables, non-finite
    /// coefficients).
    pub fn new(model: &Model) -> Result<Self, LpError> {
        model.validate()?;
        let nvars_full = model.vars.len();
        let nrows = model.constraints.len();
        let sign = if model.sense == Sense::Minimize {
            1.0
        } else {
            -1.0
        };

        // RHS-safe reduction: substitute out variables fixed by their bounds.
        // (Equal infinite bounds are rejected by validate; the finiteness
        // check is belt-and-braces.)
        let mut fate = Vec::with_capacity(nvars_full);
        let mut kept = 0usize;
        for v in &model.vars {
            if v.lower == v.upper && v.lower.is_finite() {
                fate.push(PreparedColFate::Fixed(v.lower));
            } else {
                fate.push(PreparedColFate::Kept(kept));
                kept += 1;
            }
        }
        let cols_fixed = nvars_full - kept;

        let nvars = kept;
        let ncols = nvars + nrows;
        let mut lower = Vec::with_capacity(ncols);
        let mut upper = Vec::with_capacity(ncols);
        let mut cost = vec![0.0; ncols];
        let mut user_objective = Vec::with_capacity(nvars_full);
        for (j, v) in model.vars.iter().enumerate() {
            user_objective.push(v.objective);
            if let PreparedColFate::Kept(k) = fate[j] {
                lower.push(v.lower);
                upper.push(v.upper);
                cost[k] = sign * v.objective;
            }
        }

        let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
        let mut b = Vec::with_capacity(nrows);
        let mut row_offset = vec![0.0; nrows];
        for (i, c) in model.constraints.iter().enumerate() {
            for &(v, a) in &c.terms {
                match fate[v.index()] {
                    PreparedColFate::Kept(k) => triplets.push((i, k, a)),
                    PreparedColFate::Fixed(value) => row_offset[i] += a * value,
                }
            }
            // One slack per row makes the all-slack basis the identity.
            triplets.push((i, nvars + i, 1.0));
            let (slo, shi) = match c.op {
                ConstraintOp::Le => (0.0, f64::INFINITY),
                ConstraintOp::Ge => (f64::NEG_INFINITY, 0.0),
                ConstraintOp::Eq => (0.0, 0.0),
            };
            lower.push(slo);
            upper.push(shi);
            b.push(c.rhs - row_offset[i]);
        }
        let a = CscMatrix::from_triplets(nrows, ncols, &triplets);
        let fingerprint = a.fingerprint();
        let reduction = (cols_fixed > 0).then_some(PreparedReduction {
            fate,
            row_offset,
            cols_fixed,
        });

        Ok(PreparedLp {
            nrows,
            ncols,
            nvars,
            nvars_full,
            a,
            lower,
            upper,
            cost,
            b,
            user_objective,
            sign,
            reduction,
            fingerprint,
        })
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.nrows
    }

    /// Number of model (structural) variables, in the caller's (full) space.
    pub fn num_vars(&self) -> usize {
        self.nvars_full
    }

    /// Number of standardized columns (kept structurals + slacks).
    pub fn num_cols(&self) -> usize {
        self.ncols
    }

    /// Overwrites the right-hand side of one constraint. `row` is the index
    /// of the constraint in the order it was added to the [`Model`]; the
    /// constraint matrix, operators and bounds are untouched, so a basis from
    /// a previous solve stays structurally valid for
    /// [`PreparedLp::solve_warm`]. (When the RHS-safe reduction fixed
    /// variables out of this row, their contribution is re-subtracted here.)
    ///
    /// # Panics
    /// If `row` is out of range or `rhs` is not finite.
    pub fn set_rhs(&mut self, row: usize, rhs: f64) {
        assert!(row < self.nrows, "row {row} out of range ({})", self.nrows);
        assert!(rhs.is_finite(), "rhs must be finite, got {rhs}");
        let offset = self.reduction.as_ref().map_or(0.0, |r| r.row_offset[row]);
        self.b[row] = rhs - offset;
    }

    /// Overwrites the objective coefficient of a model variable (in the
    /// model's optimisation direction). A coefficient set on a variable the
    /// RHS-safe reduction fixed out only changes the reported objective (its
    /// value cannot move).
    ///
    /// # Panics
    /// If the variable does not belong to the prepared model or the
    /// coefficient is not finite.
    pub fn set_objective(&mut self, var: Var, coefficient: f64) {
        assert!(
            var.index() < self.nvars_full,
            "variable {} out of range ({})",
            var.index(),
            self.nvars_full
        );
        assert!(
            coefficient.is_finite(),
            "objective coefficient must be finite, got {coefficient}"
        );
        self.user_objective[var.index()] = coefficient;
        let kept = match &self.reduction {
            None => Some(var.index()),
            Some(r) => match r.fate[var.index()] {
                PreparedColFate::Kept(k) => Some(k),
                PreparedColFate::Fixed(_) => None,
            },
        };
        if let Some(k) = kept {
            self.cost[k] = self.sign * coefficient;
        }
    }

    /// Solves from a cold start (the all-slack basis).
    pub fn solve(&self, options: &SimplexOptions) -> Result<PreparedSolution, LpError> {
        crate::revised::solve_prepared(self, None, options)
    }

    /// Solves warm-started from `basis` (typically the optimal basis of the
    /// previous solve in a chain). If the basis is still primal feasible for
    /// the current RHS the solve is phase-1-free; otherwise a composite
    /// phase 1 re-enters from the given basis, which still needs far fewer
    /// pivots than a cold start. A basis that does not fit this LP (wrong
    /// shape) or whose basis matrix has gone numerically singular falls back
    /// to a cold solve instead of failing.
    pub fn solve_warm(
        &self,
        basis: &Basis,
        options: &SimplexOptions,
    ) -> Result<PreparedSolution, LpError> {
        if basis.basic.len() != self.nrows || basis.status.len() != self.ncols {
            return self.solve(options);
        }
        match crate::revised::solve_prepared(self, Some(basis), options) {
            Ok(s) => Ok(s),
            // Warm re-entry can only fail *numerically* in ways a fresh start
            // avoids (stale basis drift); verdicts like Infeasible/Unbounded
            // and stalls are re-derived cold so a bad warm basis can never
            // change the reported outcome of a solve.
            Err(LpError::IterationLimit { .. } | LpError::Infeasible | LpError::Unbounded) => {
                self.solve(options)
            }
            Err(e) => Err(e),
        }
    }

    /// Expands reduced-space structural values back into the full model
    /// variable space (fixed variables at their fixed value).
    pub(crate) fn expand_values(&self, reduced: Vec<f64>) -> Vec<f64> {
        match &self.reduction {
            None => reduced,
            Some(r) => r
                .fate
                .iter()
                .map(|fate| match *fate {
                    PreparedColFate::Kept(k) => reduced[k],
                    PreparedColFate::Fixed(v) => v,
                })
                .collect(),
        }
    }

    /// Variables removed at preparation time by the RHS-safe reduction.
    pub(crate) fn presolve_cols_removed(&self) -> usize {
        self.reduction.as_ref().map_or(0, |r| r.cols_fixed)
    }

    /// The caller-direction objective value of a full-space point.
    pub(crate) fn user_objective_value(&self, values: &[f64]) -> f64 {
        self.user_objective
            .iter()
            .zip(values)
            .map(|(c, x)| c * x)
            .sum()
    }
}
