//! Standardize-once / solve-many linear programs.
//!
//! [`PreparedLp`] separates the two halves of [`crate::Model::solve`] that
//! the dense tableau fuses: *standardization* (mapping a model with boxed
//! variables and `≤ / ≥ / =` rows onto equality form `Ax = b`,
//! `l ≤ x ≤ u`) happens once, and *solving* can then be repeated after
//! mutating the right-hand side ([`PreparedLp::set_rhs`]) or the objective
//! ([`PreparedLp::set_objective`]) — the mutations the recursive mechanism's
//! `H`/`G` sequence chains need, where consecutive entries differ only in the
//! mass-tie equality `Σ_p f_p = i`.
//!
//! Standard form is deliberately slack-complete: every constraint row gets
//! exactly one slack column (`≤` → `s ∈ [0, ∞)`, `≥` → `s ∈ (−∞, 0]`,
//! `=` → `s ∈ [0, 0]`), so the all-slack basis is always a valid (if
//! possibly infeasible) starting basis with `B = I`, and row `i` of the
//! standardized system is the model's `i`-th constraint verbatim — which is
//! what makes [`PreparedLp::set_rhs`] a plain store. Boxed variables are kept
//! native (no column splits, no extra bound rows): the bounded-variable
//! revised simplex of [`crate::revised`] tracks nonbasic-at-lower /
//! nonbasic-at-upper status instead.
//!
//! A successful solve returns the optimal [`Basis`]; feeding it to
//! [`PreparedLp::solve_warm`] after an RHS step re-enters the simplex from
//! that basis (phase-1-free when the old basis is still primal feasible),
//! which is how a chain of `|P|+1` sequence solves avoids `|P|` cold starts.

use crate::error::LpError;
use crate::model::{ConstraintOp, Model, Sense, Var};
use crate::simplex::SimplexOptions;
use crate::solution::Solution;
use crate::sparse::CscMatrix;

/// Where a variable sits relative to the current basis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarStatus {
    /// In the basis; its value is determined by `B⁻¹(b − N x_N)`.
    Basic,
    /// Nonbasic at its (finite) lower bound.
    AtLower,
    /// Nonbasic at its (finite) upper bound.
    AtUpper,
    /// Nonbasic free variable (both bounds infinite), parked at 0.
    Free,
}

/// A simplex basis: which column is basic in each row, plus the bound status
/// of every column. Returned by a solve and accepted by
/// [`PreparedLp::solve_warm`] to continue a chain from the previous optimum.
///
/// A basis returned by a solve also carries the maintained basis-inverse
/// factor. Re-entering with it skips the `O(rows³)` refactorization as long
/// as the constraint matrix is unchanged (RHS and objective mutations keep
/// it valid; the factor is fingerprinted against the matrix so a basis fed
/// to a *different* prepared LP silently falls back to refactorizing).
#[derive(Clone, Debug)]
pub struct Basis {
    /// Basic column of each row (length = number of rows).
    pub(crate) basic: Vec<usize>,
    /// Status of every standardized column (structural + slack).
    pub(crate) status: Vec<VarStatus>,
    /// The maintained basis inverse, if this basis came out of a solve.
    pub(crate) factor: Option<BasisFactor>,
}

/// A cached basis inverse (column-major `B⁻¹`), tied to the constraint
/// matrix it was factored against.
#[derive(Clone, Debug)]
pub(crate) struct BasisFactor {
    /// Column-major inverse: `binv[k]` is `B⁻¹·e_k`.
    pub(crate) binv: Vec<Vec<f64>>,
    /// Fingerprint of the [`CscMatrix`] the inverse belongs to.
    pub(crate) fingerprint: u64,
}

impl Basis {
    /// Number of basic columns (= rows of the LP it belongs to).
    pub fn num_rows(&self) -> usize {
        self.basic.len()
    }

    /// Number of standardized columns this basis describes.
    pub fn num_cols(&self) -> usize {
        self.status.len()
    }
}

/// The result of a [`PreparedLp`] solve: the solution plus the optimal basis
/// to warm-start the next solve in a chain from.
#[derive(Clone, Debug)]
pub struct PreparedSolution {
    /// The optimal solution (objective in the caller's direction, values per
    /// model variable).
    pub solution: Solution,
    /// The optimal basis.
    pub basis: Basis,
}

/// A model standardized once into sparse equality form, ready for repeated
/// (warm-started) solves under RHS / objective mutation.
#[derive(Clone, Debug)]
pub struct PreparedLp {
    /// Rows (= model constraints).
    pub(crate) nrows: usize,
    /// Standardized columns: structural variables then one slack per row.
    pub(crate) ncols: usize,
    /// Structural (model) variables.
    pub(crate) nvars: usize,
    /// The standardized constraint matrix (slack columns included).
    pub(crate) a: CscMatrix,
    /// Per-column lower bounds.
    pub(crate) lower: Vec<f64>,
    /// Per-column upper bounds.
    pub(crate) upper: Vec<f64>,
    /// Internal minimization costs per column (sign already applied).
    pub(crate) cost: Vec<f64>,
    /// Right-hand side per row.
    pub(crate) b: Vec<f64>,
    /// The caller's objective coefficients (their direction), for reporting.
    user_objective: Vec<f64>,
    /// +1 for minimization, −1 for maximization.
    sign: f64,
    /// Fingerprint of `a`, fixed at preparation time (RHS and objective
    /// mutations leave the matrix untouched).
    pub(crate) fingerprint: u64,
}

impl PreparedLp {
    /// Standardizes a model. Fails on the same invalid inputs
    /// [`Model::solve`] rejects (bad bounds, unknown variables, non-finite
    /// coefficients).
    pub fn new(model: &Model) -> Result<Self, LpError> {
        model.validate()?;
        let nvars = model.vars.len();
        let nrows = model.constraints.len();
        let ncols = nvars + nrows;
        let sign = if model.sense == Sense::Minimize {
            1.0
        } else {
            -1.0
        };

        let mut lower = Vec::with_capacity(ncols);
        let mut upper = Vec::with_capacity(ncols);
        let mut cost = vec![0.0; ncols];
        let mut user_objective = Vec::with_capacity(nvars);
        for (j, v) in model.vars.iter().enumerate() {
            lower.push(v.lower);
            upper.push(v.upper);
            cost[j] = sign * v.objective;
            user_objective.push(v.objective);
        }

        let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
        let mut b = Vec::with_capacity(nrows);
        for (i, c) in model.constraints.iter().enumerate() {
            for &(v, a) in &c.terms {
                triplets.push((i, v.index(), a));
            }
            // One slack per row makes the all-slack basis the identity.
            triplets.push((i, nvars + i, 1.0));
            let (slo, shi) = match c.op {
                ConstraintOp::Le => (0.0, f64::INFINITY),
                ConstraintOp::Ge => (f64::NEG_INFINITY, 0.0),
                ConstraintOp::Eq => (0.0, 0.0),
            };
            lower.push(slo);
            upper.push(shi);
            b.push(c.rhs);
        }
        let a = CscMatrix::from_triplets(nrows, ncols, &triplets);
        let fingerprint = a.fingerprint();

        Ok(PreparedLp {
            nrows,
            ncols,
            nvars,
            a,
            lower,
            upper,
            cost,
            b,
            user_objective,
            sign,
            fingerprint,
        })
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.nrows
    }

    /// Number of model (structural) variables.
    pub fn num_vars(&self) -> usize {
        self.nvars
    }

    /// Number of standardized columns (structural + slacks).
    pub fn num_cols(&self) -> usize {
        self.ncols
    }

    /// Overwrites the right-hand side of one constraint. `row` is the index
    /// of the constraint in the order it was added to the [`Model`]; the
    /// constraint matrix, operators and bounds are untouched, so a basis from
    /// a previous solve stays structurally valid for
    /// [`PreparedLp::solve_warm`].
    ///
    /// # Panics
    /// If `row` is out of range or `rhs` is not finite.
    pub fn set_rhs(&mut self, row: usize, rhs: f64) {
        assert!(row < self.nrows, "row {row} out of range ({})", self.nrows);
        assert!(rhs.is_finite(), "rhs must be finite, got {rhs}");
        self.b[row] = rhs;
    }

    /// Overwrites the objective coefficient of a model variable (in the
    /// model's optimisation direction).
    ///
    /// # Panics
    /// If the variable does not belong to the prepared model or the
    /// coefficient is not finite.
    pub fn set_objective(&mut self, var: Var, coefficient: f64) {
        assert!(
            var.index() < self.nvars,
            "variable {} out of range ({})",
            var.index(),
            self.nvars
        );
        assert!(
            coefficient.is_finite(),
            "objective coefficient must be finite, got {coefficient}"
        );
        self.user_objective[var.index()] = coefficient;
        self.cost[var.index()] = self.sign * coefficient;
    }

    /// Solves from a cold start (the all-slack basis).
    pub fn solve(&self, options: &SimplexOptions) -> Result<PreparedSolution, LpError> {
        crate::revised::solve_prepared(self, None, options)
    }

    /// Solves warm-started from `basis` (typically the optimal basis of the
    /// previous solve in a chain). If the basis is still primal feasible for
    /// the current RHS the solve is phase-1-free; otherwise a composite
    /// phase 1 re-enters from the given basis, which still needs far fewer
    /// pivots than a cold start. A basis that does not fit this LP (wrong
    /// shape) or whose basis matrix has gone numerically singular falls back
    /// to a cold solve instead of failing.
    pub fn solve_warm(
        &self,
        basis: &Basis,
        options: &SimplexOptions,
    ) -> Result<PreparedSolution, LpError> {
        if basis.basic.len() != self.nrows || basis.status.len() != self.ncols {
            return self.solve(options);
        }
        match crate::revised::solve_prepared(self, Some(basis), options) {
            Ok(s) => Ok(s),
            // Warm re-entry can only fail *numerically* in ways a fresh start
            // avoids (stale basis drift); verdicts like Infeasible/Unbounded
            // and stalls are re-derived cold so a bad warm basis can never
            // change the reported outcome of a solve.
            Err(LpError::IterationLimit { .. } | LpError::Infeasible | LpError::Unbounded) => {
                self.solve(options)
            }
            Err(e) => Err(e),
        }
    }

    /// The caller-direction objective value of a standardized point.
    pub(crate) fn user_objective_value(&self, values: &[f64]) -> f64 {
        self.user_objective
            .iter()
            .zip(values)
            .map(|(c, x)| c * x)
            .sum()
    }
}
