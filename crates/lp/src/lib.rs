//! A small, dependency-free linear-programming solver.
//!
//! The efficient recursive mechanism (paper Sec. 5.3) computes each entry of
//! the sequences `H` and `G` by solving a linear program with `O(L)`
//! variables, where `L` is the total length of the annotations of the
//! sensitive K-relation. This crate provides the solver: a dense two-phase
//! primal simplex over a model with variable bounds and `≤ / ≥ / =`
//! constraints.
//!
//! The solver is deliberately simple and exact-by-construction rather than
//! tuned for huge instances: the LPs produced by the mechanism have at most a
//! few thousand rows at the default experiment scale. See `DESIGN.md` for the
//! scale presets.
//!
//! ```
//! use rmdp_lp::{Model, Sense};
//!
//! // minimize  x + 2y   subject to  x + y >= 1,  0 <= x,y <= 1
//! let mut m = Model::new(Sense::Minimize);
//! let x = m.add_var(0.0, 1.0, 1.0);
//! let y = m.add_var(0.0, 1.0, 2.0);
//! m.add_ge([(x, 1.0), (y, 1.0)], 1.0);
//! let sol = m.solve().unwrap();
//! assert!((sol.objective - 1.0).abs() < 1e-9);
//! assert!((sol.value(x) - 1.0).abs() < 1e-9);
//! ```

#![deny(missing_docs)]

pub mod error;
pub mod model;
pub mod simplex;
pub mod solution;

pub use error::LpError;
pub use model::{Constraint, ConstraintOp, Model, Sense, Var};
pub use solution::{Solution, SolveStats};
