//! A small, dependency-free linear-programming solver.
//!
//! The efficient recursive mechanism (paper Sec. 5.3) computes each entry of
//! the sequences `H` and `G` by solving a linear program with `O(L)`
//! variables, where `L` is the total length of the annotations of the
//! sensitive K-relation. This crate provides the solver: a sparse
//! bounded-variable **revised simplex** ([`revised`]) over models with boxed
//! variables and `≤ / ≥ / =` constraints. The basis is maintained as a
//! sparse Markowitz **LU factorization** updated by a bounded eta file
//! ([`SolverBackend::SparseLu`], the default); the dense `B⁻¹` revised
//! backend ([`SolverBackend::Revised`]) and the original dense two-phase
//! tableau ([`SolverBackend::DenseTableau`]) are retained as
//! differential-testing oracles. A **presolve** pass (fixed variables,
//! singleton rows/columns, duplicate-column merges) shrinks models in front
//! of every [`Model::solve`]; [`PreparedLp`] applies its RHS-safe subset.
//!
//! Two ways in:
//!
//! * [`Model::solve`] — one-shot: standardize and solve.
//! * [`Model::prepare`] → [`PreparedLp`] — standardize once, then mutate the
//!   right-hand side ([`PreparedLp::set_rhs`]) or objective
//!   ([`PreparedLp::set_objective`]) and re-solve, warm-starting each solve
//!   from the previous optimal [`Basis`] ([`PreparedLp::solve_warm`]). This
//!   is the interface the mechanism's `H`/`G` sequence chains use: the
//!   `2(|P|+1)` entry LPs of one query family share everything except the
//!   mass-tie right-hand side, so a chain of warm solves replaces `O(|P|)`
//!   cold starts.
//!
//! ```
//! use rmdp_lp::{Model, Sense, SimplexOptions};
//!
//! // minimize  x + 2y   subject to  x + y >= 1,  0 <= x,y <= 1
//! let mut m = Model::new(Sense::Minimize);
//! let x = m.add_var(0.0, 1.0, 1.0);
//! let y = m.add_var(0.0, 1.0, 2.0);
//! m.add_ge([(x, 1.0), (y, 1.0)], 1.0);
//! let sol = m.solve().unwrap();
//! assert!((sol.objective - 1.0).abs() < 1e-9);
//! assert!((sol.value(x) - 1.0).abs() < 1e-9);
//!
//! // The same model through the standardize-once path, re-solved after an
//! // RHS step with a warm start.
//! let mut prepared = m.prepare().unwrap();
//! let options = SimplexOptions::default();
//! let first = prepared.solve(&options).unwrap();
//! prepared.set_rhs(0, 1.5);
//! let second = prepared.solve_warm(&first.basis, &options).unwrap();
//! // x runs to its cap, y covers the rest: 1 + 2·0.5 = 2.
//! assert!((second.solution.objective - 2.0).abs() < 1e-9);
//! ```

#![deny(missing_docs)]

pub mod error;
mod lu;
pub mod model;
pub mod prepared;
mod presolve;
pub mod revised;
pub mod simplex;
pub mod solution;
pub mod sparse;

pub use error::LpError;
pub use model::{Constraint, ConstraintOp, Model, Sense, Var};
pub use prepared::{Basis, PreparedLp, PreparedSolution, VarStatus};
pub use simplex::{SimplexOptions, SolverBackend};
pub use solution::{Solution, SolveStats};
pub use sparse::CscMatrix;
