//! Solutions returned by the simplex solver.

use crate::model::Var;

/// Counters describing the work done by one solve.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SolveStats {
    /// Simplex pivots performed in phase 1.
    pub phase1_iterations: usize,
    /// Simplex pivots performed in phase 2.
    pub phase2_iterations: usize,
    /// Rows of the standardised tableau.
    pub rows: usize,
    /// Columns of the standardised tableau (excluding the right-hand side).
    pub cols: usize,
}

/// An optimal solution of a linear program.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Optimal objective value (in the caller's optimisation direction).
    pub objective: f64,
    /// Optimal value of every model variable, indexed by [`Var::index`].
    pub values: Vec<f64>,
    /// Work counters.
    pub stats: SolveStats,
}

impl Solution {
    /// The optimal value of a variable.
    pub fn value(&self, var: Var) -> f64 {
        self.values[var.index()]
    }
}
