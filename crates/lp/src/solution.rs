//! Solutions returned by the simplex solver.

use crate::model::Var;

/// Counters describing the work done by one solve.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SolveStats {
    /// Simplex pivots performed in phase 1 (for the revised backend: pivots
    /// plus bound flips spent restoring primal feasibility; 0 when a warm
    /// start re-entered feasible).
    pub phase1_iterations: usize,
    /// Simplex pivots performed in phase 2.
    pub phase2_iterations: usize,
    /// Rows of the standardised system.
    pub rows: usize,
    /// Columns of the standardised system (excluding the right-hand side).
    /// The revised backend adds exactly one slack per row and splits nothing,
    /// so this is `model vars + rows`; the dense oracle is wider (free-var
    /// splits and explicit upper-bound rows).
    pub cols: usize,
    /// Basis-inverse refactorizations performed (revised backend only).
    pub refactorizations: usize,
    /// Bound flips — iterations that moved a nonbasic variable to its other
    /// bound without touching the basis (revised backend only).
    pub bound_flips: usize,
    /// Whether this solve re-entered from a caller-supplied basis
    /// ([`crate::PreparedLp::solve_warm`]).
    pub warm_started: bool,
}

/// An optimal solution of a linear program.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Optimal objective value (in the caller's optimisation direction).
    pub objective: f64,
    /// Optimal value of every model variable, indexed by [`Var::index`].
    pub values: Vec<f64>,
    /// Work counters.
    pub stats: SolveStats,
}

impl Solution {
    /// The optimal value of a variable.
    pub fn value(&self, var: Var) -> f64 {
        self.values[var.index()]
    }
}
