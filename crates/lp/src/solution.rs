//! Solutions returned by the simplex solver.

use crate::model::Var;

/// Counters describing the work done by one solve.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SolveStats {
    /// Simplex pivots performed in phase 1 (for the revised backend: pivots
    /// plus bound flips spent restoring primal feasibility; 0 when a warm
    /// start re-entered feasible).
    pub phase1_iterations: usize,
    /// Simplex pivots performed in phase 2.
    pub phase2_iterations: usize,
    /// Rows of the standardised system.
    pub rows: usize,
    /// Columns of the standardised system (excluding the right-hand side).
    /// The revised backend adds exactly one slack per row and splits nothing,
    /// so this is `model vars + rows`; the dense oracle is wider (free-var
    /// splits and explicit upper-bound rows).
    pub cols: usize,
    /// From-scratch basis factorizations triggered after entry (drift check
    /// or eta-file cap), on either revised backend.
    pub refactorizations: usize,
    /// Bound flips — iterations that moved a nonbasic variable to its other
    /// bound without touching the basis (revised backends only).
    pub bound_flips: usize,
    /// Product-form basis updates applied (one per true pivot): eta-file
    /// updates on the sparse-LU backend, dense `B⁻¹` eta transformations on
    /// the dense revised backend.
    pub basis_updates: usize,
    /// Peak stored nonzeros of the sparse LU factorization (factors plus
    /// eta file) across the solve; 0 on the dense backends, which do not
    /// track fill-in.
    pub fill_in_nnz: usize,
    /// Constraint rows removed by presolve before the solve (full presolve
    /// on the [`crate::Model::solve`] path; the RHS-safe
    /// [`crate::PreparedLp`] subset never removes rows).
    pub presolve_rows_removed: usize,
    /// Variables removed by presolve before the solve (fixed, substituted
    /// or merged away). `rows`/`cols` report the *reduced* system.
    pub presolve_cols_removed: usize,
    /// Whether this solve re-entered from a caller-supplied basis
    /// ([`crate::PreparedLp::solve_warm`]).
    pub warm_started: bool,
}

/// An optimal solution of a linear program.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Optimal objective value (in the caller's optimisation direction).
    pub objective: f64,
    /// Optimal value of every model variable, indexed by [`Var::index`].
    pub values: Vec<f64>,
    /// Work counters.
    pub stats: SolveStats,
}

impl Solution {
    /// The optimal value of a variable.
    pub fn value(&self, var: Var) -> f64 {
        self.values[var.index()]
    }
}
