//! LP presolve: shrink a [`Model`] before it reaches the simplex, and a
//! postsolve map that reconstructs full solutions afterwards.
//!
//! The recursive mechanism's H/G instances are highly redundant in exactly
//! the ways classical presolve targets: fixed variables (pinned
//! participants), singleton rows (per-child Or hinges over one variable),
//! empty columns (participants appearing in no annotation term) and
//! duplicate columns (symmetric participants with identical incidence).
//! Reductions run to a fixpoint:
//!
//! * **fixed variables** (`l = u`): substituted into every row they touch;
//! * **empty rows**: checked for trivial (in)feasibility, then dropped;
//! * **singleton rows**: absorbed into the variable's bounds (an `=` row
//!   pins the variable, surfacing as a fixed variable next round);
//! * **empty columns**: fixed at their objective-favoured bound when that
//!   bound is finite (left alone otherwise so unboundedness verdicts stay
//!   with the solver);
//! * **free column singletons in equality rows**: solved out symbolically —
//!   row and column both disappear, the objective is substituted through;
//! * **duplicate columns** (identical sparsity pattern, coefficients and
//!   cost, finite bounds): merged into one representative whose bounds are
//!   the interval sums.
//!
//! [`Presolved::postsolve`] replays the recorded reductions in reverse to
//! recover a full-length solution vector, and the objective is re-evaluated
//! against the *original* costs, so postsolved solutions are exact members
//! of the original feasible set. Infeasibility discovered during presolve is
//! returned as [`LpError::Infeasible`]; presolve never claims unboundedness
//! (those verdicts always come from the solver itself).
//!
//! The separate RHS-safe subset used by [`crate::PreparedLp`] lives in
//! [`crate::prepared`]: chains mutate the RHS and objective after
//! standardization, so only reductions that keep row indices intact and
//! commute with those mutations are legal there.

use crate::error::LpError;
use crate::model::{ConstraintOp, Model, Sense};

/// Bound-crossing tolerance: bounds that cross by more than this are an
/// infeasibility proof; within it the variable is treated as fixed. Matches
/// the solver's feasibility tolerance.
const FEAS_TOL: f64 = 1e-7;

/// Smallest coefficient magnitude presolve will divide by.
const COEF_TOL: f64 = 1e-9;

/// What happened to each original variable.
#[derive(Clone, Debug)]
enum ColFate {
    /// Survives into the reduced model (index assigned at compaction).
    Active,
    /// Fixed at a value; substituted out of every row.
    Fixed(f64),
    /// Solved out of an equality row (free column singleton).
    Substituted,
    /// Merged into a duplicate-column representative.
    Merged,
}

/// A recorded reduction that needs replaying (in reverse) at postsolve time.
#[derive(Clone, Debug)]
enum Action {
    /// `var = (rhs − Σ terms) / coeff`, from a free column singleton in an
    /// equality row.
    SubstituteFree {
        var: usize,
        coeff: f64,
        rhs: f64,
        terms: Vec<(usize, f64)>,
    },
    /// Duplicate-column merge: the representative (first part) holds the sum;
    /// postsolve distributes it greedily across `(var, lower, upper)` parts.
    SplitDuplicate { parts: Vec<(usize, f64, f64)> },
}

/// The outcome of presolving a model: the reduced model plus everything
/// needed to map a reduced solution back.
#[derive(Clone, Debug)]
pub(crate) struct Presolved {
    /// The reduced model handed to the solver.
    pub(crate) reduced: Model,
    /// Rows removed by presolve.
    pub(crate) rows_removed: usize,
    /// Columns (variables) removed by presolve.
    pub(crate) cols_removed: usize,
    /// Original objective coefficients (pre-substitution), for re-evaluation.
    orig_objective: Vec<f64>,
    /// Per original variable: where it went.
    fate: Vec<ColFate>,
    /// Reduced index of each `Active` variable.
    reduced_index: Vec<usize>,
    /// Reductions to replay in reverse.
    actions: Vec<Action>,
}

impl Presolved {
    /// Expands a reduced solution vector to the full variable space.
    pub(crate) fn postsolve(&self, reduced_values: &[f64]) -> Vec<f64> {
        let mut full = vec![0.0; self.fate.len()];
        for (j, fate) in self.fate.iter().enumerate() {
            match fate {
                ColFate::Active => full[j] = reduced_values[self.reduced_index[j]],
                ColFate::Fixed(v) => full[j] = *v,
                ColFate::Substituted | ColFate::Merged => {}
            }
        }
        for action in self.actions.iter().rev() {
            match action {
                Action::SubstituteFree {
                    var,
                    coeff,
                    rhs,
                    terms,
                } => {
                    let dot: f64 = terms.iter().map(|&(k, a)| a * full[k]).sum();
                    full[*var] = (rhs - dot) / coeff;
                }
                Action::SplitDuplicate { parts } => {
                    let v = full[parts[0].0];
                    let total_lo: f64 = parts.iter().map(|p| p.1).sum();
                    let mut leftover = v - total_lo;
                    for &(var, lo, hi) in parts {
                        let take = leftover.max(0.0).min(hi - lo);
                        full[var] = lo + take;
                        leftover -= take;
                    }
                }
            }
        }
        full
    }

    /// The original-model objective of a full solution vector.
    pub(crate) fn objective_of(&self, full_values: &[f64]) -> f64 {
        self.orig_objective
            .iter()
            .zip(full_values)
            .map(|(c, x)| c * x)
            .sum()
    }
}

/// One working row during reduction.
#[derive(Clone, Debug)]
struct WorkRow {
    terms: Vec<(usize, f64)>,
    op: ConstraintOp,
    rhs: f64,
}

/// Runs all reductions to a fixpoint. Returns [`LpError::Infeasible`] when a
/// reduction proves the model has no feasible point.
pub(crate) fn presolve(model: &Model) -> Result<Presolved, LpError> {
    model.validate()?;
    let n = model.vars.len();
    let sign = if model.sense == Sense::Minimize {
        1.0
    } else {
        -1.0
    };

    let mut lo: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();
    let mut hi: Vec<f64> = model.vars.iter().map(|v| v.upper).collect();
    // Costs in the caller's direction; substitutions adjust them in place.
    let mut cost: Vec<f64> = model.vars.iter().map(|v| v.objective).collect();
    let orig_objective = cost.clone();
    let mut rows: Vec<Option<WorkRow>> = model
        .constraints
        .iter()
        .map(|c| {
            Some(WorkRow {
                terms: c.terms.iter().map(|&(v, a)| (v.index(), a)).collect(),
                op: c.op,
                rhs: c.rhs,
            })
        })
        .collect();
    let mut fate: Vec<ColFate> = vec![ColFate::Active; n];
    let mut actions: Vec<Action> = Vec::new();
    let mut rows_removed = 0usize;
    let mut cols_removed = 0usize;

    // Membership index, rebuilt when rows change shape. Rows are small in
    // practice (hinge rows touch a handful of participants), so a rebuild
    // per round is O(nnz).
    let col_rows = |rows: &Vec<Option<WorkRow>>| -> Vec<Vec<usize>> {
        let mut cr: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, row) in rows.iter().enumerate() {
            if let Some(r) = row {
                for &(j, _) in &r.terms {
                    cr[j].push(i);
                }
            }
        }
        cr
    };

    for _round in 0..32 {
        let mut changed = false;

        // --- Fixed variables: bounds meeting (or crossing within tol). ---
        for j in 0..n {
            if !matches!(fate[j], ColFate::Active) {
                continue;
            }
            if lo[j] > hi[j] + FEAS_TOL {
                return Err(LpError::Infeasible);
            }
            if lo[j] >= hi[j] {
                let v = lo[j];
                fate[j] = ColFate::Fixed(v);
                cols_removed += 1;
                changed = true;
                for row in rows.iter_mut().flatten() {
                    if let Some(pos) = row.terms.iter().position(|&(k, _)| k == j) {
                        let (_, a) = row.terms.swap_remove(pos);
                        row.rhs -= a * v;
                    }
                }
            }
        }

        // --- Empty rows: trivially satisfied or infeasible. ---
        for row in rows.iter_mut() {
            let Some(r) = row else { continue };
            if !r.terms.is_empty() {
                continue;
            }
            let ok = match r.op {
                ConstraintOp::Le => 0.0 <= r.rhs + FEAS_TOL,
                ConstraintOp::Ge => 0.0 >= r.rhs - FEAS_TOL,
                ConstraintOp::Eq => r.rhs.abs() <= FEAS_TOL,
            };
            if !ok {
                return Err(LpError::Infeasible);
            }
            *row = None;
            rows_removed += 1;
            changed = true;
        }

        // --- Singleton rows: absorb into the variable's bounds. ---
        for row in rows.iter_mut() {
            let Some(r) = row else { continue };
            if r.terms.len() != 1 {
                continue;
            }
            let (j, a) = r.terms[0];
            if a.abs() < COEF_TOL {
                // Numerically empty; next round's empty-row pass decides.
                r.terms.clear();
                continue;
            }
            let bound = r.rhs / a;
            match (r.op, a > 0.0) {
                (ConstraintOp::Le, true) | (ConstraintOp::Ge, false) => {
                    hi[j] = hi[j].min(bound);
                }
                (ConstraintOp::Le, false) | (ConstraintOp::Ge, true) => {
                    lo[j] = lo[j].max(bound);
                }
                (ConstraintOp::Eq, _) => {
                    lo[j] = lo[j].max(bound);
                    hi[j] = hi[j].min(bound);
                }
            }
            if lo[j] > hi[j] + FEAS_TOL {
                // The absorbed bound crosses the existing one: no feasible
                // value exists. Checked here (not left to the next round's
                // fixed-variable pass) so the empty-column pass below cannot
                // fix the now-unconstrained variable first and mask it.
                return Err(LpError::Infeasible);
            }
            *row = None;
            rows_removed += 1;
            changed = true;
        }

        let cr = col_rows(&rows);

        // --- Free column singletons in equality rows: solve out. ---
        for j in 0..n {
            if !matches!(fate[j], ColFate::Active) {
                continue;
            }
            if lo[j].is_finite() || hi[j].is_finite() || cr[j].len() != 1 {
                continue;
            }
            let i = cr[j][0];
            let Some(r) = &rows[i] else { continue };
            if r.op != ConstraintOp::Eq {
                continue;
            }
            let Some(&(_, a)) = r.terms.iter().find(|&&(k, _)| k == j) else {
                continue;
            };
            if a.abs() < COEF_TOL {
                continue;
            }
            let others: Vec<(usize, f64)> =
                r.terms.iter().copied().filter(|&(k, _)| k != j).collect();
            // Objective substitution: c_j·x_j = c_j·rhs/a − Σ (c_j·a_k/a)·x_k.
            let cj = cost[j];
            if cj != 0.0 {
                for &(k, ak) in &others {
                    cost[k] -= cj * ak / a;
                }
            }
            actions.push(Action::SubstituteFree {
                var: j,
                coeff: a,
                rhs: r.rhs,
                terms: others,
            });
            fate[j] = ColFate::Substituted;
            rows[i] = None;
            rows_removed += 1;
            cols_removed += 1;
            changed = true;
        }

        let cr = col_rows(&rows);

        // --- Empty columns: fix at the objective-favoured finite bound. ---
        for j in 0..n {
            if !matches!(fate[j], ColFate::Active) || !cr[j].is_empty() {
                continue;
            }
            if lo[j] > hi[j] + FEAS_TOL {
                return Err(LpError::Infeasible);
            }
            let c_int = sign * cost[j];
            let favoured = if c_int > 0.0 {
                lo[j]
            } else if c_int < 0.0 {
                hi[j]
            } else if lo[j].is_finite() {
                lo[j]
            } else if hi[j].is_finite() {
                hi[j]
            } else {
                // Free with zero cost: any value is optimal; park at 0 like
                // the solver would.
                0.0
            };
            if !favoured.is_finite() {
                // Improving without bound: leave it to the solver, which
                // must still weigh feasibility of the rest of the model
                // before declaring the LP unbounded.
                continue;
            }
            fate[j] = ColFate::Fixed(favoured);
            cols_removed += 1;
            changed = true;
        }

        // --- Duplicate columns: identical pattern, coefficients and cost. ---
        {
            use std::collections::BTreeMap;
            // Signature: sorted (row, coeff bits) plus cost bits. Only
            // finite-bounded columns participate (bound sums stay finite and
            // the greedy postsolve split is well defined).
            type ColSignature = (Vec<(usize, u64)>, u64);
            let mut groups: BTreeMap<ColSignature, Vec<usize>> = BTreeMap::new();
            for j in 0..n {
                if !matches!(fate[j], ColFate::Active) {
                    continue;
                }
                if !lo[j].is_finite() || !hi[j].is_finite() || cr[j].is_empty() {
                    continue;
                }
                let mut sig: Vec<(usize, u64)> = Vec::with_capacity(cr[j].len());
                for &i in &cr[j] {
                    let Some(r) = &rows[i] else { continue };
                    if let Some(&(_, a)) = r.terms.iter().find(|&&(k, _)| k == j) {
                        sig.push((i, a.to_bits()));
                    }
                }
                sig.sort_unstable();
                groups.entry((sig, cost[j].to_bits())).or_default().push(j);
            }
            for (_, mut members) in groups {
                if members.len() < 2 {
                    continue;
                }
                members.sort_unstable();
                let rep = members[0];
                let mut parts = vec![(rep, lo[rep], hi[rep])];
                for &k in &members[1..] {
                    parts.push((k, lo[k], hi[k]));
                    lo[rep] += lo[k];
                    hi[rep] += hi[k];
                    fate[k] = ColFate::Merged;
                    cols_removed += 1;
                    for &i in &cr[k] {
                        if let Some(r) = rows[i].as_mut() {
                            if let Some(pos) = r.terms.iter().position(|&(v, _)| v == k) {
                                r.terms.swap_remove(pos);
                            }
                        }
                    }
                }
                actions.push(Action::SplitDuplicate { parts });
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }

    // --- Compact into the reduced model. ---
    let mut reduced = Model::new(model.sense);
    let mut reduced_index = vec![usize::MAX; n];
    let mut reduced_vars = Vec::with_capacity(n);
    for j in 0..n {
        if matches!(fate[j], ColFate::Active) {
            reduced_index[j] = reduced_vars.len();
            reduced_vars.push(reduced.add_var(lo[j], hi[j], cost[j]));
        }
    }
    for row in rows.iter().flatten() {
        let terms: Vec<_> = row
            .terms
            .iter()
            .map(|&(j, a)| (reduced_vars[reduced_index[j]], a))
            .collect();
        reduced.add_constraint(terms, row.op, row.rhs);
    }

    Ok(Presolved {
        reduced,
        rows_removed,
        cols_removed,
        orig_objective,
        fate,
        reduced_index,
        actions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn feasible_in(model: &Model, x: &[f64], tol: f64) -> bool {
        for (j, v) in model.vars.iter().enumerate() {
            if x[j] < v.lower - tol || x[j] > v.upper + tol {
                return false;
            }
        }
        for c in &model.constraints {
            let lhs: f64 = c.terms.iter().map(|&(v, a)| a * x[v.index()]).sum();
            let ok = match c.op {
                ConstraintOp::Le => lhs <= c.rhs + tol,
                ConstraintOp::Ge => lhs >= c.rhs - tol,
                ConstraintOp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    #[test]
    fn fixed_variables_are_substituted_out() {
        let mut m = Model::minimize();
        let x = m.add_var(2.0, 2.0, 5.0);
        let y = m.add_unit_var(1.0);
        m.add_ge([(x, 1.0), (y, 1.0)], 2.5);
        let pre = presolve(&m).unwrap();
        // The cascade solves the whole model: x is fixed, the surviving
        // y >= 0.5 row becomes a bound, and the then-empty column y is fixed
        // at its favoured (lower) bound.
        assert_eq!(pre.cols_removed, 2);
        assert_eq!(pre.rows_removed, 1);
        assert!(pre.reduced.vars.is_empty());
        let sol = pre.reduced.solve().unwrap();
        let full = pre.postsolve(&sol.values);
        assert!((full[x.index()] - 2.0).abs() < 1e-9);
        assert!((full[y.index()] - 0.5).abs() < 1e-9);
        assert!((pre.objective_of(&full) - 10.5).abs() < 1e-9);
        assert!(feasible_in(&m, &full, 1e-7));
    }

    #[test]
    fn singleton_rows_become_bounds() {
        let mut m = Model::minimize();
        let x = m.add_var(0.0, 10.0, -1.0);
        m.add_le([(x, 2.0)], 6.0); // x <= 3
        let pre = presolve(&m).unwrap();
        assert_eq!(pre.rows_removed, 1);
        assert_eq!(pre.reduced.constraints.len(), 0);
        // The absorbed bound leaves an empty column, fixed at the favoured
        // (upper, cost is negative) bound x = 3.
        assert_eq!(pre.cols_removed, 1);
        let sol = pre.reduced.solve().unwrap();
        let full = pre.postsolve(&sol.values);
        assert!((full[x.index()] - 3.0).abs() < 1e-9);
        assert!(feasible_in(&m, &full, 1e-7));
    }

    #[test]
    fn singleton_equality_row_pins_the_variable() {
        let mut m = Model::minimize();
        let x = m.add_var(0.0, 10.0, 1.0);
        let y = m.add_var(0.0, 10.0, 1.0);
        m.add_eq([(x, 2.0)], 5.0); // x = 2.5
        m.add_ge([(x, 1.0), (y, 1.0)], 4.0);
        let pre = presolve(&m).unwrap();
        // The singleton pins x = 2.5; substituting it leaves y >= 1.5, which
        // cascades into a bound and a favoured-bound fix. Nothing survives.
        assert!(pre.reduced.vars.is_empty());
        let sol = pre.reduced.solve().unwrap();
        let full = pre.postsolve(&sol.values);
        assert!((full[x.index()] - 2.5).abs() < 1e-9);
        assert!((full[y.index()] - 1.5).abs() < 1e-9);
        assert!(feasible_in(&m, &full, 1e-7));
    }

    #[test]
    fn crossing_singleton_bounds_prove_infeasibility() {
        let mut m = Model::minimize();
        let x = m.add_var(0.0, 1.0, 1.0);
        m.add_ge([(x, 1.0)], 2.0); // x >= 2 vs x <= 1
        match presolve(&m) {
            Err(LpError::Infeasible) => {}
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn empty_columns_fix_at_the_favoured_bound() {
        let mut m = Model::minimize();
        let x = m.add_var(-1.0, 2.0, 3.0); // favoured: lower
        let y = m.add_var(-1.0, 2.0, -3.0); // favoured: upper
        let z = m.add_var(f64::NEG_INFINITY, f64::INFINITY, 0.0); // parked at 0
        let w = m.add_unit_var(1.0);
        m.add_ge([(w, 1.0)], 0.5);
        let pre = presolve(&m).unwrap();
        // w's constraint cascades away too, so the reduction is total.
        assert!(pre.reduced.vars.is_empty());
        let sol = pre.reduced.solve().unwrap();
        let full = pre.postsolve(&sol.values);
        assert!((full[x.index()] + 1.0).abs() < 1e-12);
        assert!((full[y.index()] - 2.0).abs() < 1e-12);
        assert!(full[z.index()].abs() < 1e-12);
        assert!((full[w.index()] - 0.5).abs() < 1e-12);
        assert!(feasible_in(&m, &full, 1e-7));
    }

    #[test]
    fn unbounded_empty_columns_are_left_to_the_solver() {
        let mut m = Model::minimize();
        let _x = m.add_var(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        let y = m.add_unit_var(1.0);
        m.add_ge([(y, 1.0)], 0.5);
        let pre = presolve(&m).unwrap();
        // x survives so the solver (not presolve) reports unboundedness
        // (y cascades away through its singleton row).
        assert_eq!(pre.reduced.vars.len(), 1);
        match m.solve() {
            Err(LpError::Unbounded) => {}
            other => panic!("expected Unbounded, got {other:?}"),
        }
    }

    #[test]
    fn free_column_singletons_in_equality_rows_are_solved_out() {
        let mut m = Model::minimize();
        let x = m.add_var(f64::NEG_INFINITY, f64::INFINITY, 2.0);
        let y = m.add_var(0.0, 4.0, 1.0);
        m.add_eq([(x, 2.0), (y, 1.0)], 6.0); // x = (6 - y) / 2
        let pre = presolve(&m).unwrap();
        assert_eq!(pre.rows_removed, 1);
        // x is substituted out; the then-empty column y is fixed too.
        assert_eq!(pre.cols_removed, 2);
        let sol = pre.reduced.solve().unwrap();
        let full = pre.postsolve(&sol.values);
        // Objective 2x + y = (6 − y) + y = 6 for every y: flat optimum.
        assert!((pre.objective_of(&full) - 6.0).abs() < 1e-9);
        assert!(feasible_in(&m, &full, 1e-7));
    }

    #[test]
    fn duplicate_columns_merge_and_split_back() {
        let mut m = Model::minimize();
        let x = m.add_unit_var(1.0);
        let y = m.add_unit_var(1.0);
        let z = m.add_unit_var(1.0);
        // Identical pattern/coefficients/cost for all three.
        m.add_ge([(x, 1.0), (y, 1.0), (z, 1.0)], 2.5);
        let pre = presolve(&m).unwrap();
        // Two merges, then the merged column's singleton row cascades it
        // down to a fixed value.
        assert_eq!(pre.cols_removed, 3);
        assert!(pre.reduced.vars.is_empty());
        let sol = pre.reduced.solve().unwrap();
        let full = pre.postsolve(&sol.values);
        let total = full[x.index()] + full[y.index()] + full[z.index()];
        assert!((total - 2.5).abs() < 1e-9);
        assert!(feasible_in(&m, &full, 1e-7));
        assert!((pre.objective_of(&full) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn columns_with_different_costs_do_not_merge() {
        let mut m = Model::minimize();
        let x = m.add_unit_var(1.0);
        let y = m.add_unit_var(2.0);
        m.add_ge([(x, 1.0), (y, 1.0)], 1.5);
        let pre = presolve(&m).unwrap();
        assert_eq!(pre.reduced.vars.len(), 2);
    }

    #[test]
    fn infeasible_empty_rows_are_detected() {
        let mut m = Model::minimize();
        let x = m.add_var(1.0, 1.0, 0.0);
        m.add_le([(x, 1.0)], 0.5); // after fixing x=1: 0 <= -0.5
        match presolve(&m) {
            Err(LpError::Infeasible) => {}
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn presolve_is_a_no_op_on_irreducible_models() {
        let mut m = Model::minimize();
        let x = m.add_unit_var(1.0);
        let y = m.add_unit_var(-1.0);
        m.add_ge([(x, 1.0), (y, 0.5)], 0.5);
        m.add_le([(x, 1.0), (y, -1.0)], 0.75);
        let pre = presolve(&m).unwrap();
        assert_eq!(pre.rows_removed, 0);
        assert_eq!(pre.cols_removed, 0);
        assert_eq!(pre.reduced.vars.len(), 2);
        assert_eq!(pre.reduced.constraints.len(), 2);
    }
}
