//! Compressed sparse column (CSC) storage for the standardized constraint
//! matrix.
//!
//! The revised simplex never forms the full tableau: every iteration touches
//! one column of `A` (the FTRAN of the entering column) and prices the
//! nonbasic columns against the dual vector, both of which want fast
//! column-wise access with the column's nonzeros packed together. The LPs the
//! mechanism produces are extremely sparse — a hinge row touches only the
//! participants of one annotation — so CSC keeps the per-iteration cost at
//! `O(m² + nnz)` instead of the dense tableau's `O(m·n)` touched-and-written.

/// A read-only sparse matrix in compressed-sparse-column form.
#[derive(Clone, Debug)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    /// `col_ptr[j]..col_ptr[j+1]` indexes the nonzeros of column `j`.
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds the matrix from `(row, col, value)` triplets. Duplicate
    /// `(row, col)` entries are summed; exact zeros (including duplicate sums
    /// that cancel) are dropped.
    pub fn from_triplets(nrows: usize, ncols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut entries: Vec<(usize, usize, f64)> = triplets.to_vec();
        // Column-major, then row order inside a column, so duplicates are
        // adjacent and columns come out packed.
        entries.sort_by_key(|&(row, col, _)| (col, row));

        let mut col_ptr = vec![0usize; ncols + 1];
        let mut row_idx = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        let mut iter = entries.into_iter().peekable();
        while let Some((row, col, mut value)) = iter.next() {
            debug_assert!(
                row < nrows && col < ncols,
                "triplet ({row},{col}) out of range"
            );
            while let Some(&(r2, c2, v2)) = iter.peek() {
                if r2 == row && c2 == col {
                    value += v2;
                    iter.next();
                } else {
                    break;
                }
            }
            if value != 0.0 {
                row_idx.push(row);
                values.push(value);
                col_ptr[col + 1] += 1;
            }
        }
        for j in 0..ncols {
            col_ptr[j + 1] += col_ptr[j];
        }
        CscMatrix {
            nrows,
            ncols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The nonzeros of column `j` as `(row, value)` pairs.
    pub fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.col_ptr[j]..self.col_ptr[j + 1];
        self.row_idx[range.clone()]
            .iter()
            .copied()
            .zip(self.values[range].iter().copied())
    }

    /// Dot product of column `j` with a dense vector of length `nrows`.
    pub fn col_dot(&self, j: usize, dense: &[f64]) -> f64 {
        self.col(j).map(|(i, v)| v * dense[i]).sum()
    }

    /// An order-sensitive FNV-style fingerprint of the matrix (dimensions,
    /// sparsity pattern and value bits). Used to tie a cached basis inverse
    /// to the matrix it was factored against.
    pub fn fingerprint(&self) -> u64 {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(FNV_PRIME);
        };
        mix(self.nrows as u64);
        mix(self.ncols as u64);
        for &p in &self.col_ptr {
            mix(p as u64);
        }
        for (&r, &v) in self.row_idx.iter().zip(&self.values) {
            mix(r as u64);
            mix(v.to_bits());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_are_packed_by_column() {
        let m = CscMatrix::from_triplets(3, 4, &[(2, 1, 5.0), (0, 1, 2.0), (1, 3, -1.0)]);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.col(0).count(), 0);
        assert_eq!(m.col(1).collect::<Vec<_>>(), vec![(0, 2.0), (2, 5.0)]);
        assert_eq!(m.col(2).count(), 0);
        assert_eq!(m.col(3).collect::<Vec<_>>(), vec![(1, -1.0)]);
    }

    #[test]
    fn duplicates_are_summed_and_cancellations_dropped() {
        let m =
            CscMatrix::from_triplets(2, 2, &[(0, 0, 1.5), (0, 0, 0.5), (1, 1, 3.0), (1, 1, -3.0)]);
        assert_eq!(m.col(0).collect::<Vec<_>>(), vec![(0, 2.0)]);
        assert_eq!(m.col(1).count(), 0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn col_dot_matches_a_dense_product() {
        let m = CscMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (2, 0, 4.0), (1, 1, -2.0)]);
        let v = [1.0, 2.0, 3.0];
        assert_eq!(m.col_dot(0, &v), 13.0);
        assert_eq!(m.col_dot(1, &v), -4.0);
    }
}
