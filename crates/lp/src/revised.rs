//! Sparse bounded-variable revised simplex.
//!
//! The solver works on a [`PreparedLp`] in equality form `Ax = b`,
//! `l ≤ x ≤ u` and maintains a dense inverse `B⁻¹` of the basis matrix
//! (column-major, updated by a product-form eta transformation per pivot;
//! every [`SimplexOptions::refactor_every`] pivots an O(nnz) primal-residual
//! check decides whether drift warrants a from-scratch refactorization).
//! Bounds are handled natively:
//!
//! * nonbasic variables sit at a finite bound (or at 0 when free) and may
//!   enter by increasing from their lower bound or decreasing from their
//!   upper bound;
//! * the ratio test also considers the entering variable's own opposite
//!   bound — a *bound flip* changes no basis column at all;
//! * fixed variables (`l = u`) never enter.
//!
//! Feasibility is restored by a composite (artificial-free) phase 1: basic
//! variables outside their bounds get cost `±1`, the cost vector is
//! recomputed every iteration, and an out-of-bounds basic leaves the basis at
//! the bound it crosses. Because phase 1 works from *any* basis, the same
//! routine serves both the cold start (all-slack basis) and warm re-entry
//! from a previous optimal basis after an RHS step — when the old basis is
//! still primal feasible, phase 1 exits immediately without a single pivot.
//!
//! Pricing is Dantzig's rule with Bland's anti-cycling rule after
//! [`SimplexOptions::bland_after`] pivots, mirroring the dense oracle in
//! [`crate::simplex`].

use crate::error::LpError;
use crate::model::Model;
use crate::prepared::{Basis, PreparedLp, PreparedSolution, VarStatus};
use crate::simplex::SimplexOptions;
use crate::solution::{Solution, SolveStats};

/// Bound-violation tolerance: a basic variable within this distance of its
/// bounds counts as feasible.
const FEAS_TOL: f64 = 1e-7;

/// Smallest pivot magnitude accepted by the ratio test and the
/// refactorization. Dividing by anything smaller would amplify rounding
/// errors across `B⁻¹`.
const PIVOT_TOL: f64 = 1e-7;

/// Primal residual `‖b − A·x‖∞` above which the periodic drift check
/// triggers a refactorization (kept below [`FEAS_TOL`] so the inverse is
/// rebuilt before drift can corrupt feasibility decisions).
const REFRESH_TOL: f64 = 1e-8;

/// Solves a [`Model`] through the revised simplex (used by the
/// [`crate::simplex::solve`] dispatcher for the default backend).
pub(crate) fn solve_model(model: &Model, options: &SimplexOptions) -> Result<Solution, LpError> {
    let prepared = PreparedLp::new(model)?;
    Ok(solve_prepared(&prepared, None, options)?.solution)
}

/// Solves a prepared LP, cold (`start = None`, all-slack basis) or warm
/// (from a previous basis). Iteration-limit stalls and Unbounded verdicts
/// are retried once under maximum-robustness settings — Bland's rule from
/// the first pivot and a drift check after every pivot — because on heavily
/// degenerate instances accumulated rounding can empty a pivot column and
/// fake an unbounded ray (the dense oracle guards the same failure mode
/// with its RHS-perturbation retry).
pub(crate) fn solve_prepared(
    lp: &PreparedLp,
    start: Option<&Basis>,
    options: &SimplexOptions,
) -> Result<PreparedSolution, LpError> {
    match Engine::new(lp, start, options)?.run() {
        Err(LpError::IterationLimit { .. } | LpError::Unbounded) => {
            let robust = SimplexOptions {
                bland_after: 0,
                refactor_every: 1,
                ..*options
            };
            Engine::new(lp, start, &robust)?.run()
        }
        other => other,
    }
}

/// Which phase the iteration loop is running.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    One,
    Two,
}

struct Engine<'a> {
    lp: &'a PreparedLp,
    options: &'a SimplexOptions,
    m: usize,
    /// Column-major basis inverse: `binv[k]` is `B⁻¹·e_k`.
    binv: Vec<Vec<f64>>,
    basic: Vec<usize>,
    status: Vec<VarStatus>,
    /// Current value of every standardized column.
    x: Vec<f64>,
    /// Pivots since the last refactorization.
    since_refactor: usize,
    stats: SolveStats,
}

impl<'a> Engine<'a> {
    fn new(
        lp: &'a PreparedLp,
        start: Option<&Basis>,
        options: &'a SimplexOptions,
    ) -> Result<Self, LpError> {
        for &bi in &lp.b {
            if !bi.is_finite() {
                return Err(LpError::NonFiniteInput);
            }
        }
        let m = lp.nrows;
        let start = start.filter(|s| basis_is_consistent(lp, s));
        let (basic, status, inherited_binv) = match start {
            Some(s) => {
                // Reuse the maintained inverse when the basis was produced
                // against this exact matrix — the common chain case, turning
                // warm re-entry from O(m³) into O(m²).
                let binv = s
                    .factor
                    .as_ref()
                    .filter(|f| f.fingerprint == lp.fingerprint && f.binv.len() == m)
                    .map(|f| f.binv.clone());
                (s.basic.clone(), s.status.clone(), binv)
            }
            None => {
                // All-slack basis; structurals at their nearest finite bound.
                let mut status = Vec::with_capacity(lp.ncols);
                for j in 0..lp.ncols {
                    status.push(if j >= lp.nvars {
                        VarStatus::Basic
                    } else {
                        initial_status(lp.lower[j], lp.upper[j])
                    });
                }
                // The all-slack basis matrix is the identity: no
                // factorization needed.
                let identity = (0..m)
                    .map(|k| {
                        let mut col = vec![0.0; m];
                        col[k] = 1.0;
                        col
                    })
                    .collect();
                ((lp.nvars..lp.ncols).collect(), status, Some(identity))
            }
        };
        let mut engine = Engine {
            lp,
            options,
            m,
            binv: inherited_binv.unwrap_or_default(),
            basic,
            status,
            x: vec![0.0; lp.ncols],
            since_refactor: 0,
            stats: SolveStats {
                rows: m,
                cols: lp.ncols,
                warm_started: start.is_some(),
                ..SolveStats::default()
            },
        };
        let inherited = engine.binv.len() == m && start.is_some();
        if engine.binv.len() != m && engine.refactorize().is_err() {
            // A singular warm basis is repaired by falling back to the
            // all-slack basis (which is the identity, always invertible).
            return Engine::new(lp, None, options);
        }
        engine.compute_x();
        if inherited && engine.primal_residual() > REFRESH_TOL {
            // The per-solve pivot counts inside a chain rarely reach the
            // periodic drift check, so an inherited inverse is validated
            // here instead: accumulated eta-update error across the chain
            // forces a fresh factorization before it can corrupt this solve.
            if engine.refactorize().is_err() {
                return Engine::new(lp, None, options);
            }
            engine.stats.refactorizations += 1;
            engine.compute_x();
        }
        Ok(engine)
    }

    /// Rebuilds `B⁻¹` from scratch by Gauss–Jordan with partial pivoting.
    fn refactorize(&mut self) -> Result<(), ()> {
        let m = self.m;
        // Row-major copies of B and the growing inverse.
        let mut mat = vec![vec![0.0; m]; m];
        for (k, &j) in self.basic.iter().enumerate() {
            for (i, v) in self.lp.a.col(j) {
                mat[i][k] = v;
            }
        }
        let mut inv = vec![vec![0.0; m]; m];
        for (i, row) in inv.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        for col in 0..m {
            let pivot_row = (col..m)
                .max_by(|&a, &b| mat[a][col].abs().total_cmp(&mat[b][col].abs()))
                .ok_or(())?;
            if mat[pivot_row][col].abs() < PIVOT_TOL * 1e-2 {
                return Err(());
            }
            mat.swap(col, pivot_row);
            inv.swap(col, pivot_row);
            let inv_p = 1.0 / mat[col][col];
            for v in mat[col].iter_mut() {
                *v *= inv_p;
            }
            for v in inv[col].iter_mut() {
                *v *= inv_p;
            }
            let (mat_pivot, inv_pivot) =
                (std::mem::take(&mut mat[col]), std::mem::take(&mut inv[col]));
            for i in 0..m {
                if i == col {
                    continue;
                }
                let factor = mat[i][col];
                if factor != 0.0 {
                    for (x, &p) in mat[i].iter_mut().zip(&mat_pivot) {
                        *x -= factor * p;
                    }
                    for (x, &p) in inv[i].iter_mut().zip(&inv_pivot) {
                        *x -= factor * p;
                    }
                }
            }
            mat[col] = mat_pivot;
            inv[col] = inv_pivot;
        }
        // Transpose row-major inverse into column-major `binv`.
        self.binv = (0..m)
            .map(|k| (0..m).map(|i| inv[i][k]).collect())
            .collect();
        self.since_refactor = 0;
        Ok(())
    }

    /// The resting value of a nonbasic column.
    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.status[j] {
            VarStatus::AtLower => self.lp.lower[j],
            VarStatus::AtUpper => self.lp.upper[j],
            VarStatus::Free => 0.0,
            VarStatus::Basic => unreachable!("nonbasic_value on a basic column"),
        }
    }

    /// Recomputes every `x` from the basis: nonbasics at their bound, basics
    /// as `B⁻¹(b − N x_N)`.
    fn compute_x(&mut self) {
        let mut r = self.lp.b.clone();
        for j in 0..self.lp.ncols {
            if self.status[j] == VarStatus::Basic {
                continue;
            }
            let v = self.nonbasic_value(j);
            self.x[j] = v;
            if v != 0.0 {
                for (i, a) in self.lp.a.col(j) {
                    r[i] -= a * v;
                }
            }
        }
        // x_B = B⁻¹ r, accumulated column-by-column of B⁻¹.
        let mut xb = vec![0.0; self.m];
        for (k, &rk) in r.iter().enumerate() {
            if rk != 0.0 {
                for (slot, &v) in xb.iter_mut().zip(&self.binv[k]) {
                    *slot += rk * v;
                }
            }
        }
        for (row, &j) in self.basic.iter().enumerate() {
            self.x[j] = xb[row];
        }
    }

    /// `w = B⁻¹ · a_j` for a standardized column `j`.
    fn ftran(&self, j: usize) -> Vec<f64> {
        let mut w = vec![0.0; self.m];
        for (r, a) in self.lp.a.col(j) {
            for (slot, &v) in w.iter_mut().zip(&self.binv[r]) {
                *slot += a * v;
            }
        }
        w
    }

    /// `‖b − A·x‖∞` of the current iterate — the cheap (O(nnz)) drift
    /// signal deciding whether the basis inverse needs a rebuild.
    fn primal_residual(&self) -> f64 {
        let mut r = self.lp.b.clone();
        for j in 0..self.lp.ncols {
            let xj = self.x[j];
            if xj != 0.0 {
                for (i, a) in self.lp.a.col(j) {
                    r[i] -= a * xj;
                }
            }
        }
        r.iter().fold(0.0f64, |acc, v| acc.max(v.abs()))
    }

    /// `y = (c_B)ᵀ · B⁻¹`.
    fn btran(&self, cb: &[f64]) -> Vec<f64> {
        (0..self.m)
            .map(|k| cb.iter().zip(&self.binv[k]).map(|(c, v)| c * v).sum())
            .collect()
    }

    /// Total bound violation of the basic variables and the phase-1 cost
    /// vector (−1 below lower, +1 above upper).
    fn infeasibility(&self) -> (f64, Vec<f64>) {
        let mut total = 0.0;
        let mut cb = vec![0.0; self.m];
        for (row, &j) in self.basic.iter().enumerate() {
            let xj = self.x[j];
            if xj < self.lp.lower[j] - FEAS_TOL {
                cb[row] = -1.0;
                total += self.lp.lower[j] - xj;
            } else if xj > self.lp.upper[j] + FEAS_TOL {
                cb[row] = 1.0;
                total += xj - self.lp.upper[j];
            }
        }
        (total, cb)
    }

    fn run(mut self) -> Result<PreparedSolution, LpError> {
        self.stats.phase1_iterations = self.iterate(Phase::One)?;
        self.stats.phase2_iterations = self.iterate(Phase::Two)?;

        let values = self.x[..self.lp.nvars].to_vec();
        let objective = self.lp.user_objective_value(&values);
        Ok(PreparedSolution {
            solution: Solution {
                objective,
                values,
                stats: self.stats,
            },
            basis: Basis {
                basic: self.basic,
                status: self.status,
                factor: Some(crate::prepared::BasisFactor {
                    binv: self.binv,
                    fingerprint: self.lp.fingerprint,
                }),
            },
        })
    }

    /// Runs simplex iterations for one phase; returns the pivot count.
    fn iterate(&mut self, phase: Phase) -> Result<usize, LpError> {
        let tol = self.options.tol;
        let pivot_tol = PIVOT_TOL.max(tol);
        let mut iterations = 0usize;
        loop {
            // Phase-dependent cost of the current basis. Phase-1 costs depend
            // on which basics are out of bounds, so they are recomputed every
            // iteration.
            let cb: Vec<f64> = match phase {
                Phase::One => {
                    let (infeasibility, cb) = self.infeasibility();
                    if infeasibility <= FEAS_TOL {
                        return Ok(iterations);
                    }
                    cb
                }
                Phase::Two => self.basic.iter().map(|&j| self.lp.cost[j]).collect(),
            };
            if iterations >= self.options.max_iterations {
                return Err(LpError::IterationLimit {
                    limit: self.options.max_iterations,
                });
            }
            let use_bland = iterations >= self.options.bland_after;
            let y = self.btran(&cb);

            // Pricing: pick an entering nonbasic column whose reduced cost
            // improves the phase objective in its admissible direction.
            let mut entering: Option<(usize, f64)> = None; // (col, direction)
            let mut best_score = tol;
            for j in 0..self.lp.ncols {
                if self.status[j] == VarStatus::Basic || self.lp.lower[j] == self.lp.upper[j] {
                    continue;
                }
                let cj = match phase {
                    Phase::One => 0.0,
                    Phase::Two => self.lp.cost[j],
                };
                let d = cj - self.lp.a.col_dot(j, &y);
                let (score, dir) = match self.status[j] {
                    VarStatus::AtLower => (-d, 1.0),
                    VarStatus::AtUpper => (d, -1.0),
                    VarStatus::Free => (d.abs(), if d < 0.0 { 1.0 } else { -1.0 }),
                    VarStatus::Basic => unreachable!(),
                };
                if score > tol {
                    if use_bland {
                        entering = Some((j, dir));
                        break;
                    }
                    if score > best_score {
                        best_score = score;
                        entering = Some((j, dir));
                    }
                }
            }
            let Some((q, dir)) = entering else {
                return match phase {
                    // Phase-1 optimum with residual infeasibility (checked at
                    // the top of the loop): no feasible point exists.
                    Phase::One => Err(LpError::Infeasible),
                    Phase::Two => Ok(iterations),
                };
            };

            let w = self.ftran(q);

            // Ratio test. The entering variable moves by `t ≥ 0` in direction
            // `dir`; basic `row` changes as `x − t·dir·w[row]`. The entering
            // variable's own opposite bound caps the step (a *bound flip*
            // when nothing blocks earlier); with any infinite bound the range
            // is infinite.
            let mut t_best = self.lp.upper[q] - self.lp.lower[q];
            let mut leaving: Option<(usize, VarStatus)> = None;
            for row in 0..self.m {
                let wi = w[row];
                if wi.abs() <= pivot_tol {
                    continue;
                }
                let j = self.basic[row];
                let xj = self.x[j];
                let delta = dir * wi; // x_Bj decreases at rate `delta` per unit t
                let (target, leave_status) = if delta > 0.0 {
                    if phase == Phase::One && xj < self.lp.lower[j] - FEAS_TOL {
                        // Already below its lower bound and moving further
                        // down: the phase-1 cost accounts for it linearly, so
                        // it never blocks.
                        continue;
                    }
                    if phase == Phase::One && xj > self.lp.upper[j] + FEAS_TOL {
                        // Above its upper bound, moving down: it leaves when
                        // it *reaches* the violated bound.
                        (self.lp.upper[j], VarStatus::AtUpper)
                    } else {
                        (self.lp.lower[j], VarStatus::AtLower)
                    }
                } else {
                    if phase == Phase::One && xj > self.lp.upper[j] + FEAS_TOL {
                        continue;
                    }
                    if phase == Phase::One && xj < self.lp.lower[j] - FEAS_TOL {
                        (self.lp.lower[j], VarStatus::AtLower)
                    } else {
                        (self.lp.upper[j], VarStatus::AtUpper)
                    }
                };
                if !target.is_finite() {
                    continue;
                }
                let ratio = ((xj - target) / delta).max(0.0);
                let accept = match leaving {
                    None => ratio < t_best + tol,
                    Some((l, _)) => {
                        if ratio < t_best - tol {
                            true
                        } else if ratio < t_best + tol {
                            if use_bland {
                                // Bland's tie-break: smallest basic index
                                // leaves.
                                self.basic[row] < self.basic[l]
                            } else {
                                // Stability tie-break: larger pivot element.
                                wi.abs() > w[l].abs()
                            }
                        } else {
                            false
                        }
                    }
                };
                if accept {
                    t_best = t_best.min(ratio);
                    leaving = Some((row, leave_status));
                }
            }

            if t_best.is_infinite() {
                return match phase {
                    // A phase-1 objective is bounded below by zero, so an
                    // unblocked improving ray can only be numerical noise;
                    // report a stall so the Bland retry takes over.
                    Phase::One => Err(LpError::IterationLimit {
                        limit: self.options.max_iterations,
                    }),
                    Phase::Two => Err(LpError::Unbounded),
                };
            }

            // Apply the step.
            let t = t_best;
            if t != 0.0 {
                for (&j, &wi) in self.basic.iter().zip(&w) {
                    self.x[j] -= t * dir * wi;
                }
            }
            match leaving {
                None => {
                    // Bound flip: the entering variable runs to its opposite
                    // bound; the basis is unchanged.
                    self.status[q] = if dir > 0.0 {
                        VarStatus::AtUpper
                    } else {
                        VarStatus::AtLower
                    };
                    self.x[q] = self.nonbasic_value(q);
                    self.stats.bound_flips += 1;
                }
                Some((row, leave_status)) => {
                    let out = self.basic[row];
                    self.x[q] = self.nonbasic_value(q) + dir * t;
                    self.status[out] = leave_status;
                    // Snap the leaving variable exactly onto its bound to
                    // stop drift accumulating along a chain of pivots.
                    self.x[out] = match leave_status {
                        VarStatus::AtLower => self.lp.lower[out],
                        VarStatus::AtUpper => self.lp.upper[out],
                        _ => unreachable!("leaving variable always lands on a bound"),
                    };
                    self.basic[row] = q;
                    self.status[q] = VarStatus::Basic;
                    self.update_binv(row, &w);
                    self.since_refactor += 1;
                    if self.since_refactor >= self.options.refactor_every.max(1) {
                        self.since_refactor = 0;
                        // Refactorizing costs O(m³), so it is gated on an
                        // O(nnz) drift check: only a primal residual above
                        // tolerance triggers the rebuild. Well-scaled
                        // instances (the mechanism's ±1-coefficient LPs)
                        // essentially never pay it.
                        if self.primal_residual() > REFRESH_TOL {
                            if self.refactorize().is_err() {
                                return Err(LpError::IterationLimit {
                                    limit: self.options.max_iterations,
                                });
                            }
                            self.stats.refactorizations += 1;
                            self.compute_x();
                        }
                    }
                }
            }
            iterations += 1;
        }
    }

    /// Product-form update of `B⁻¹` after column `q` (with FTRAN image `w`)
    /// replaces the basic column of `row`.
    fn update_binv(&mut self, row: usize, w: &[f64]) {
        let pivot = w[row];
        debug_assert!(pivot.abs() > 0.0);
        for col in self.binv.iter_mut() {
            let vr = col[row];
            if vr == 0.0 {
                continue;
            }
            let scaled = vr / pivot;
            for (i, slot) in col.iter_mut().enumerate() {
                if i != row {
                    *slot -= w[i] * scaled;
                }
            }
            col[row] = scaled;
        }
    }
}

/// Initial nonbasic status for a structural variable given its bounds.
fn initial_status(lower: f64, upper: f64) -> VarStatus {
    if lower.is_finite() {
        VarStatus::AtLower
    } else if upper.is_finite() {
        VarStatus::AtUpper
    } else {
        VarStatus::Free
    }
}

/// Structural sanity of a warm basis: right shapes, exactly the basic
/// columns flagged `Basic`, and every nonbasic resting on a bound that
/// exists.
fn basis_is_consistent(lp: &PreparedLp, basis: &Basis) -> bool {
    if basis.basic.len() != lp.nrows || basis.status.len() != lp.ncols {
        return false;
    }
    let mut seen = vec![false; lp.ncols];
    for &j in &basis.basic {
        if j >= lp.ncols || seen[j] || basis.status[j] != VarStatus::Basic {
            return false;
        }
        seen[j] = true;
    }
    for (j, &s) in basis.status.iter().enumerate() {
        match s {
            VarStatus::Basic => {
                if !seen[j] {
                    return false;
                }
            }
            VarStatus::AtLower => {
                if !lp.lower[j].is_finite() {
                    return false;
                }
            }
            VarStatus::AtUpper => {
                if !lp.upper[j].is_finite() {
                    return false;
                }
            }
            VarStatus::Free => {}
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::SolverBackend;

    fn opts() -> SimplexOptions {
        SimplexOptions::default()
    }

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    /// The H-style family: hinges over the capped simplex with a mass row.
    fn hinge_family(mass: f64) -> Model {
        let mut m = Model::minimize();
        let f: Vec<_> = (0..5).map(|_| m.add_unit_var(0.0)).collect();
        // Mass row first so set_rhs(0, i) steps the chain.
        m.add_eq(f.iter().map(|&x| (x, 1.0)), mass);
        for window in f.windows(3) {
            let v = m.add_nonneg_var(1.0);
            let mut terms = vec![(v, -1.0)];
            terms.extend(window.iter().map(|&x| (x, 1.0)));
            m.add_le(terms, 2.0);
        }
        m
    }

    #[test]
    fn boxed_variables_take_no_extra_rows_or_columns() {
        let mut m = Model::minimize();
        let x = m.add_unit_var(-1.0);
        let y = m.add_var(-2.0, 3.0, 1.0);
        m.add_le([(x, 1.0), (y, 1.0)], 2.0);
        let prepared = m.prepare().unwrap();
        // 2 structural + 1 slack, 1 row: bounds are native, not rows.
        assert_eq!(prepared.num_rows(), 1);
        assert_eq!(prepared.num_cols(), 3);
        let s = m.solve().unwrap();
        assert_close(s.value(x), 1.0);
        assert_close(s.value(y), -2.0);
        assert_close(s.objective, -3.0);
    }

    #[test]
    fn warm_start_after_rhs_step_skips_phase_one() {
        let m = hinge_family(1.0);
        let mut prepared = m.prepare().unwrap();
        let first = prepared.solve(&opts()).unwrap();
        assert!(!first.solution.stats.warm_started);

        prepared.set_rhs(0, 2.0);
        let second = prepared.solve_warm(&first.basis, &opts()).unwrap();
        assert!(second.solution.stats.warm_started);
        // The dense oracle agrees on the stepped instance.
        let oracle = hinge_family(2.0)
            .solve_with(&SimplexOptions {
                backend: SolverBackend::DenseTableau,
                ..opts()
            })
            .unwrap();
        assert_close(second.solution.objective, oracle.objective);
    }

    #[test]
    fn warm_chain_matches_cold_solves_and_spends_fewer_pivots() {
        let mut prepared = hinge_family(0.0).prepare().unwrap();
        let mut basis: Option<crate::Basis> = None;
        let mut warm_pivots = 0usize;
        let mut cold_pivots = 0usize;
        for i in 0..=5usize {
            prepared.set_rhs(0, i as f64);
            let warm = match &basis {
                None => prepared.solve(&opts()).unwrap(),
                Some(b) => prepared.solve_warm(b, &opts()).unwrap(),
            };
            let cold = prepared.solve(&opts()).unwrap();
            assert_close(warm.solution.objective, cold.solution.objective);
            warm_pivots +=
                warm.solution.stats.phase1_iterations + warm.solution.stats.phase2_iterations;
            cold_pivots +=
                cold.solution.stats.phase1_iterations + cold.solution.stats.phase2_iterations;
            basis = Some(warm.basis);
        }
        assert!(
            warm_pivots < cold_pivots,
            "warm chain spent {warm_pivots} pivots vs cold {cold_pivots}"
        );
    }

    #[test]
    fn set_objective_changes_are_picked_up() {
        let mut m = Model::minimize();
        let x = m.add_unit_var(1.0);
        let y = m.add_unit_var(2.0);
        m.add_ge([(x, 1.0), (y, 1.0)], 1.0);
        let mut prepared = m.prepare().unwrap();
        let first = prepared.solve(&opts()).unwrap();
        assert_close(first.solution.objective, 1.0);
        // Make y the cheap variable; the optimum flips to y = 1.
        prepared.set_objective(y, 0.5);
        let second = prepared.solve_warm(&first.basis, &opts()).unwrap();
        assert_close(second.solution.objective, 0.5);
        assert_close(second.solution.values[y.index()], 1.0);
    }

    #[test]
    fn infeasible_and_unbounded_verdicts_survive_warm_starts() {
        let mut m = Model::minimize();
        let x = m.add_unit_var(1.0);
        m.add_ge([(x, 1.0)], 0.5);
        let mut prepared = m.prepare().unwrap();
        let sol = prepared.solve(&opts()).unwrap();
        // Step the RHS beyond the box: infeasible from the warm basis.
        prepared.set_rhs(0, 2.0);
        match prepared.solve_warm(&sol.basis, &opts()) {
            Err(LpError::Infeasible) => {}
            other => panic!("expected Infeasible, got {other:?}"),
        }

        let mut m = Model::maximize();
        let x = m.add_nonneg_var(1.0);
        m.add_ge([(x, 1.0)], 1.0);
        match m.solve() {
            Err(LpError::Unbounded) => {}
            other => panic!("expected Unbounded, got {other:?}"),
        }
    }

    #[test]
    fn a_stale_basis_from_another_shape_falls_back_to_cold() {
        let small = hinge_family(1.0).prepare().unwrap();
        let small_solution = small.solve(&opts()).unwrap();
        let mut other = Model::minimize();
        let x = other.add_unit_var(1.0);
        other.add_ge([(x, 1.0)], 0.25);
        let other = other.prepare().unwrap();
        let sol = other.solve_warm(&small_solution.basis, &opts()).unwrap();
        assert_close(sol.solution.objective, 0.25);
        assert!(!sol.solution.stats.warm_started);
    }

    #[test]
    fn unconstrained_model_settles_on_bounds() {
        // No rows at all: every variable just runs to its cheaper bound.
        let mut m = Model::minimize();
        let x = m.add_var(-1.0, 2.0, 1.0);
        let y = m.add_var(-3.0, 4.0, -1.0);
        let s = m.solve().unwrap();
        assert_close(s.value(x), -1.0);
        assert_close(s.value(y), 4.0);
        assert_close(s.objective, -5.0);
    }

    #[test]
    fn free_variable_without_constraints_is_unbounded() {
        let mut m = Model::minimize();
        m.add_var(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        match m.solve() {
            Err(LpError::Unbounded) => {}
            other => panic!("expected Unbounded, got {other:?}"),
        }
    }

    #[test]
    fn refactorization_interval_does_not_change_the_optimum() {
        let m = hinge_family(3.5);
        let baseline = m.solve().unwrap();
        let frequent = m
            .solve_with(&SimplexOptions {
                refactor_every: 1,
                ..opts()
            })
            .unwrap();
        assert_close(baseline.objective, frequent.objective);
        assert!(frequent.stats.refactorizations >= baseline.stats.refactorizations);
    }

    #[test]
    fn fixed_variables_stay_fixed() {
        let mut m = Model::minimize();
        let x = m.add_var(2.5, 2.5, -10.0);
        let y = m.add_unit_var(1.0);
        m.add_ge([(x, 1.0), (y, 1.0)], 3.0);
        let s = m.solve().unwrap();
        assert_close(s.value(x), 2.5);
        assert_close(s.value(y), 0.5);
    }

    #[test]
    fn negative_rhs_rows_are_handled_without_sign_normalisation() {
        // min x  s.t.  -x <= -2  (i.e. x >= 2), x in [0, 5].
        let mut m = Model::minimize();
        let x = m.add_var(0.0, 5.0, 1.0);
        m.add_le([(x, -1.0)], -2.0);
        let s = m.solve().unwrap();
        assert_close(s.value(x), 2.0);
    }

    #[test]
    fn dense_and_revised_agree_on_the_mechanism_shape() {
        for mass in [0.0, 1.0, 2.5, 4.0, 5.0] {
            let m = hinge_family(mass);
            let revised = m.solve().unwrap();
            let dense = m
                .solve_with(&SimplexOptions {
                    backend: SolverBackend::DenseTableau,
                    ..opts()
                })
                .unwrap();
            assert!(
                (revised.objective - dense.objective).abs() < 1e-7,
                "mass {mass}: revised {} vs dense {}",
                revised.objective,
                dense.objective
            );
        }
    }
}
