//! Sparse bounded-variable revised simplex.
//!
//! The solver works on a [`PreparedLp`] in equality form `Ax = b`,
//! `l ≤ x ≤ u` and maintains a representation of the basis inverse behind
//! the `Factorization` trait, with two interchangeable implementations:
//!
//! * `LuFactor` (default, [`SolverBackend::SparseLu`]): a sparse Markowitz
//!   LU factorization maintained across pivots by a bounded eta file
//!   (`crate::lu`) — per-pivot work tracks the factor nonzeros;
//! * `DenseFactor` ([`SolverBackend::Revised`]): the dense column-major
//!   `B⁻¹` this solver grew out of, updated by a product-form eta
//!   transformation per pivot — kept as a differential-testing oracle with
//!   identical pivot logic but independent linear algebra.
//!
//! Either representation is revalidated every
//! [`SimplexOptions::refactor_every`] pivots by an O(nnz) primal-residual
//! drift check that gates a from-scratch refactorization; the sparse backend
//! additionally refactorizes unconditionally when its eta file reaches
//! [`SimplexOptions::update_cap`]. Bounds are handled natively:
//!
//! * nonbasic variables sit at a finite bound (or at 0 when free) and may
//!   enter by increasing from their lower bound or decreasing from their
//!   upper bound;
//! * the ratio test also considers the entering variable's own opposite
//!   bound — a *bound flip* changes no basis column at all;
//! * fixed variables (`l = u`) never enter.
//!
//! Feasibility is restored by a composite (artificial-free) phase 1: basic
//! variables outside their bounds get cost `±1`, the cost vector is
//! recomputed every iteration, and an out-of-bounds basic leaves the basis at
//! the bound it crosses. Because phase 1 works from *any* basis, the same
//! routine serves both the cold start (all-slack basis) and warm re-entry
//! from a previous optimal basis after an RHS step — when the old basis is
//! still primal feasible, phase 1 exits immediately without a single pivot.
//!
//! Pricing is Dantzig's rule with Bland's anti-cycling rule after
//! [`SimplexOptions::bland_after`] pivots, mirroring the dense oracle in
//! [`crate::simplex`].

use std::sync::Arc;

use crate::error::LpError;
use crate::lu::LuFactor;
use crate::model::Model;
use crate::prepared::{Basis, BasisFactor, FactorKind, PreparedLp, PreparedSolution, VarStatus};
use crate::simplex::{SimplexOptions, SolverBackend};
use crate::solution::{Solution, SolveStats};
use crate::sparse::CscMatrix;

/// Bound-violation tolerance: a basic variable within this distance of its
/// bounds counts as feasible.
const FEAS_TOL: f64 = 1e-7;

/// Smallest pivot magnitude accepted by the ratio test and the
/// refactorization. Dividing by anything smaller would amplify rounding
/// errors across the basis representation.
const PIVOT_TOL: f64 = 1e-7;

/// Primal residual `‖b − A·x‖∞` above which the periodic drift check
/// triggers a refactorization (kept below [`FEAS_TOL`] so the factors are
/// rebuilt before drift can corrupt feasibility decisions).
const REFRESH_TOL: f64 = 1e-8;

/// A maintained representation of the basis inverse. Both implementations
/// are cheap to clone (their bulk lives behind an [`Arc`]), which is what
/// makes carrying a factor through [`Basis`] O(1).
pub(crate) trait Factorization: Clone + std::fmt::Debug {
    /// The representation of the identity basis (the all-slack cold start).
    fn identity(m: usize) -> Self;
    /// Factorizes the basis whose columns are `a[:, basic[k]]`; `Err` on a
    /// (numerically) singular basis.
    fn factorize(a: &CscMatrix, basic: &[usize], options: &SimplexOptions) -> Result<Self, ()>;
    /// Dimension of the represented basis.
    fn dim(&self) -> usize;
    /// `w = B⁻¹ · a_j` for a standardized column `j` of `a`.
    fn ftran(&self, a: &CscMatrix, j: usize, m: usize) -> Vec<f64>;
    /// `y = (c_B)ᵀ · B⁻¹`.
    fn btran(&self, cb: &[f64]) -> Vec<f64>;
    /// `B⁻¹ · r` for a dense right-hand side.
    fn solve_vec(&self, r: Vec<f64>) -> Vec<f64>;
    /// Applies the product-form update after the entering column (FTRAN
    /// image `w`) replaced the basic column of `row`.
    fn update(&mut self, row: usize, w: &[f64]);
    /// Updates accumulated since the last from-scratch factorization that
    /// count against [`SimplexOptions::update_cap`] (0 on the dense
    /// representation, whose in-place updates do not grow).
    fn pending_updates(&self) -> usize;
    /// Stored nonzeros of a sparse representation (0 on the dense one).
    fn factor_nnz(&self) -> usize;
    /// Recovers this representation from a carried [`FactorKind`] (O(1):
    /// clones share the underlying storage). `None` when the basis was
    /// produced by the other backend.
    fn from_carried(kind: &FactorKind) -> Option<Self>;
    /// Wraps this representation for carrying through a [`Basis`].
    fn into_carried(self) -> FactorKind;
}

/// The dense column-major basis inverse (`binv[k]` is `B⁻¹·e_k`), shared
/// behind an [`Arc`]: hand-off through a [`Basis`] is O(1) and the deep
/// O(m²) copy happens only at the first pivot of a solve that inherited a
/// shared inverse (copy-on-write via [`Arc::make_mut`]).
#[derive(Clone, Debug)]
pub(crate) struct DenseFactor {
    binv: Arc<Vec<Vec<f64>>>,
}

impl DenseFactor {
    /// Whether two factors share the same inverse storage (used by the O(1)
    /// hand-off regression tests).
    #[cfg(test)]
    pub(crate) fn shares_storage_with(&self, other: &DenseFactor) -> bool {
        Arc::ptr_eq(&self.binv, &other.binv)
    }
}

impl Factorization for DenseFactor {
    fn identity(m: usize) -> Self {
        let binv = (0..m)
            .map(|k| {
                let mut col = vec![0.0; m];
                col[k] = 1.0;
                col
            })
            .collect();
        DenseFactor {
            binv: Arc::new(binv),
        }
    }

    /// Gauss–Jordan with partial pivoting, O(m³).
    fn factorize(a: &CscMatrix, basic: &[usize], _options: &SimplexOptions) -> Result<Self, ()> {
        let m = basic.len();
        // Row-major copies of B and the growing inverse.
        let mut mat = vec![vec![0.0; m]; m];
        for (k, &j) in basic.iter().enumerate() {
            for (i, v) in a.col(j) {
                mat[i][k] = v;
            }
        }
        let mut inv = vec![vec![0.0; m]; m];
        for (i, row) in inv.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        for col in 0..m {
            let pivot_row = (col..m)
                .max_by(|&a, &b| mat[a][col].abs().total_cmp(&mat[b][col].abs()))
                .ok_or(())?;
            if mat[pivot_row][col].abs() < PIVOT_TOL * 1e-2 {
                return Err(());
            }
            mat.swap(col, pivot_row);
            inv.swap(col, pivot_row);
            let inv_p = 1.0 / mat[col][col];
            for v in mat[col].iter_mut() {
                *v *= inv_p;
            }
            for v in inv[col].iter_mut() {
                *v *= inv_p;
            }
            let (mat_pivot, inv_pivot) =
                (std::mem::take(&mut mat[col]), std::mem::take(&mut inv[col]));
            for i in 0..m {
                if i == col {
                    continue;
                }
                let factor = mat[i][col];
                if factor != 0.0 {
                    for (x, &p) in mat[i].iter_mut().zip(&mat_pivot) {
                        *x -= factor * p;
                    }
                    for (x, &p) in inv[i].iter_mut().zip(&inv_pivot) {
                        *x -= factor * p;
                    }
                }
            }
            mat[col] = mat_pivot;
            inv[col] = inv_pivot;
        }
        // Transpose row-major inverse into column-major form.
        let binv = (0..m)
            .map(|k| (0..m).map(|i| inv[i][k]).collect())
            .collect();
        Ok(DenseFactor {
            binv: Arc::new(binv),
        })
    }

    fn dim(&self) -> usize {
        self.binv.len()
    }

    fn ftran(&self, a: &CscMatrix, j: usize, m: usize) -> Vec<f64> {
        let mut w = vec![0.0; m];
        for (r, v) in a.col(j) {
            for (slot, &bv) in w.iter_mut().zip(&self.binv[r]) {
                *slot += v * bv;
            }
        }
        w
    }

    fn btran(&self, cb: &[f64]) -> Vec<f64> {
        (0..self.binv.len())
            .map(|k| cb.iter().zip(&self.binv[k]).map(|(c, v)| c * v).sum())
            .collect()
    }

    fn solve_vec(&self, r: Vec<f64>) -> Vec<f64> {
        // B⁻¹ r, accumulated column-by-column of B⁻¹.
        let mut out = vec![0.0; r.len()];
        for (k, &rk) in r.iter().enumerate() {
            if rk != 0.0 {
                for (slot, &v) in out.iter_mut().zip(&self.binv[k]) {
                    *slot += rk * v;
                }
            }
        }
        out
    }

    fn update(&mut self, row: usize, w: &[f64]) {
        let pivot = w[row];
        debug_assert!(pivot.abs() > 0.0);
        // Copy-on-write: the deep O(m²) clone happens here (first pivot of a
        // solve whose inverse is still shared with the previous basis), not
        // on warm entry.
        let binv = Arc::make_mut(&mut self.binv);
        for col in binv.iter_mut() {
            let vr = col[row];
            if vr == 0.0 {
                continue;
            }
            let scaled = vr / pivot;
            for (i, slot) in col.iter_mut().enumerate() {
                if i != row {
                    *slot -= w[i] * scaled;
                }
            }
            col[row] = scaled;
        }
    }

    fn pending_updates(&self) -> usize {
        0
    }

    fn factor_nnz(&self) -> usize {
        0
    }

    fn from_carried(kind: &FactorKind) -> Option<Self> {
        match kind {
            FactorKind::Dense(f) => Some(f.clone()),
            FactorKind::Lu(_) => None,
        }
    }

    fn into_carried(self) -> FactorKind {
        FactorKind::Dense(self)
    }
}

impl Factorization for LuFactor {
    fn identity(m: usize) -> Self {
        LuFactor::identity(m)
    }

    fn factorize(a: &CscMatrix, basic: &[usize], options: &SimplexOptions) -> Result<Self, ()> {
        LuFactor::factorize(a, basic, options.markowitz_threshold)
    }

    fn dim(&self) -> usize {
        self.dim()
    }

    fn ftran(&self, a: &CscMatrix, j: usize, m: usize) -> Vec<f64> {
        let mut rhs = vec![0.0; m];
        for (r, v) in a.col(j) {
            rhs[r] += v;
        }
        self.solve_vec(rhs)
    }

    fn btran(&self, cb: &[f64]) -> Vec<f64> {
        self.btran_vec(cb.to_vec())
    }

    fn solve_vec(&self, r: Vec<f64>) -> Vec<f64> {
        LuFactor::solve_vec(self, r)
    }

    fn update(&mut self, row: usize, w: &[f64]) {
        LuFactor::update(self, row, w);
    }

    fn pending_updates(&self) -> usize {
        LuFactor::pending_updates(self)
    }

    fn factor_nnz(&self) -> usize {
        self.nnz()
    }

    fn from_carried(kind: &FactorKind) -> Option<Self> {
        match kind {
            FactorKind::Lu(f) => Some(f.clone()),
            FactorKind::Dense(_) => None,
        }
    }

    fn into_carried(self) -> FactorKind {
        FactorKind::Lu(self)
    }
}

/// Solves a [`Model`] through the revised simplex (used by the
/// [`crate::simplex::solve`] dispatcher for both revised backends).
pub(crate) fn solve_model(model: &Model, options: &SimplexOptions) -> Result<Solution, LpError> {
    let prepared = PreparedLp::new(model)?;
    Ok(solve_prepared(&prepared, None, options)?.solution)
}

/// Solves a prepared LP, cold (`start = None`, all-slack basis) or warm
/// (from a previous basis), on the basis representation selected by
/// [`SimplexOptions::backend`] (the dense-tableau backend has no prepared
/// path, so it falls through to the default sparse LU).
pub(crate) fn solve_prepared(
    lp: &PreparedLp,
    start: Option<&Basis>,
    options: &SimplexOptions,
) -> Result<PreparedSolution, LpError> {
    match options.backend {
        SolverBackend::Revised => solve_prepared_as::<DenseFactor>(lp, start, options),
        SolverBackend::SparseLu | SolverBackend::DenseTableau => {
            solve_prepared_as::<LuFactor>(lp, start, options)
        }
    }
}

/// Iteration-limit stalls and Unbounded verdicts are retried once under
/// maximum-robustness settings — Bland's rule from the first pivot, a drift
/// check after every pivot and a single-eta cap — because on heavily
/// degenerate instances accumulated rounding can empty a pivot column and
/// fake an unbounded ray (the dense oracle guards the same failure mode
/// with its RHS-perturbation retry).
fn solve_prepared_as<F: Factorization>(
    lp: &PreparedLp,
    start: Option<&Basis>,
    options: &SimplexOptions,
) -> Result<PreparedSolution, LpError> {
    match Engine::<F>::new(lp, start, options)?.run() {
        Err(LpError::IterationLimit { .. } | LpError::Unbounded) => {
            let robust = SimplexOptions {
                bland_after: 0,
                refactor_every: 1,
                update_cap: 1,
                ..*options
            };
            Engine::<F>::new(lp, start, &robust)?.run()
        }
        other => other,
    }
}

/// Which phase the iteration loop is running.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    One,
    Two,
}

struct Engine<'a, F: Factorization> {
    lp: &'a PreparedLp,
    options: &'a SimplexOptions,
    m: usize,
    /// The maintained basis representation.
    factor: F,
    basic: Vec<usize>,
    status: Vec<VarStatus>,
    /// Current value of every standardized column.
    x: Vec<f64>,
    /// Pivots since the last refactorization.
    since_refactor: usize,
    stats: SolveStats,
}

impl<'a, F: Factorization> Engine<'a, F> {
    fn new(
        lp: &'a PreparedLp,
        start: Option<&Basis>,
        options: &'a SimplexOptions,
    ) -> Result<Self, LpError> {
        for &bi in &lp.b {
            if !bi.is_finite() {
                return Err(LpError::NonFiniteInput);
            }
        }
        let m = lp.nrows;
        let start = start.filter(|s| basis_is_consistent(lp, s));
        let (basic, status, inherited_factor) = match start {
            Some(s) => {
                // Reuse the carried factorization when the basis was produced
                // against this exact matrix by the same backend — the common
                // chain case. The hand-off is O(1): both representations
                // share their bulk behind an Arc, so no O(m²) clone happens
                // here.
                let factor = s
                    .factor
                    .as_ref()
                    .filter(|f| f.fingerprint == lp.fingerprint)
                    .and_then(|f| F::from_carried(&f.kind))
                    .filter(|f| f.dim() == m);
                (s.basic.clone(), s.status.clone(), factor)
            }
            None => {
                // All-slack basis; structurals at their nearest finite bound.
                let mut status = Vec::with_capacity(lp.ncols);
                for j in 0..lp.ncols {
                    status.push(if j >= lp.nvars {
                        VarStatus::Basic
                    } else {
                        initial_status(lp.lower[j], lp.upper[j])
                    });
                }
                // The all-slack basis matrix is the identity: no
                // factorization needed.
                ((lp.nvars..lp.ncols).collect(), status, Some(F::identity(m)))
            }
        };
        let inherited = inherited_factor.is_some() && start.is_some();
        let factor = match inherited_factor {
            Some(f) => f,
            None => match F::factorize(&lp.a, &basic, options) {
                Ok(f) => f,
                // A singular warm basis is repaired by falling back to the
                // all-slack basis (which is the identity, always invertible).
                Err(()) => return Engine::new(lp, None, options),
            },
        };
        let mut engine = Engine {
            lp,
            options,
            m,
            factor,
            basic,
            status,
            x: vec![0.0; lp.ncols],
            since_refactor: 0,
            stats: SolveStats {
                rows: m,
                cols: lp.ncols,
                warm_started: start.is_some(),
                presolve_cols_removed: lp.presolve_cols_removed(),
                ..SolveStats::default()
            },
        };
        engine.stats.fill_in_nnz = engine.factor.factor_nnz();
        engine.compute_x();
        if inherited && engine.primal_residual() > REFRESH_TOL {
            // The per-solve pivot counts inside a chain rarely reach the
            // periodic drift check, so an inherited factorization is
            // validated here instead: accumulated update error across the
            // chain forces a fresh factorization before it can corrupt this
            // solve.
            if engine.refactorize().is_err() {
                return Engine::new(lp, None, options);
            }
            engine.stats.refactorizations += 1;
            engine.compute_x();
        }
        Ok(engine)
    }

    /// Rebuilds the basis representation from scratch.
    fn refactorize(&mut self) -> Result<(), ()> {
        self.factor = F::factorize(&self.lp.a, &self.basic, self.options)?;
        self.since_refactor = 0;
        self.stats.fill_in_nnz = self.stats.fill_in_nnz.max(self.factor.factor_nnz());
        Ok(())
    }

    /// The resting value of a nonbasic column.
    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.status[j] {
            VarStatus::AtLower => self.lp.lower[j],
            VarStatus::AtUpper => self.lp.upper[j],
            VarStatus::Free => 0.0,
            VarStatus::Basic => unreachable!("nonbasic_value on a basic column"),
        }
    }

    /// Recomputes every `x` from the basis: nonbasics at their bound, basics
    /// as `B⁻¹(b − N x_N)`.
    fn compute_x(&mut self) {
        let mut r = self.lp.b.clone();
        for j in 0..self.lp.ncols {
            if self.status[j] == VarStatus::Basic {
                continue;
            }
            let v = self.nonbasic_value(j);
            self.x[j] = v;
            if v != 0.0 {
                for (i, a) in self.lp.a.col(j) {
                    r[i] -= a * v;
                }
            }
        }
        let xb = self.factor.solve_vec(r);
        for (row, &j) in self.basic.iter().enumerate() {
            self.x[j] = xb[row];
        }
    }

    /// `w = B⁻¹ · a_j` for a standardized column `j`.
    fn ftran(&self, j: usize) -> Vec<f64> {
        self.factor.ftran(&self.lp.a, j, self.m)
    }

    /// `‖b − A·x‖∞` of the current iterate — the cheap (O(nnz)) drift
    /// signal deciding whether the basis representation needs a rebuild.
    fn primal_residual(&self) -> f64 {
        let mut r = self.lp.b.clone();
        for j in 0..self.lp.ncols {
            let xj = self.x[j];
            if xj != 0.0 {
                for (i, a) in self.lp.a.col(j) {
                    r[i] -= a * xj;
                }
            }
        }
        r.iter().fold(0.0f64, |acc, v| acc.max(v.abs()))
    }

    /// `y = (c_B)ᵀ · B⁻¹`.
    fn btran(&self, cb: &[f64]) -> Vec<f64> {
        self.factor.btran(cb)
    }

    /// Total bound violation of the basic variables and the phase-1 cost
    /// vector (−1 below lower, +1 above upper).
    fn infeasibility(&self) -> (f64, Vec<f64>) {
        let mut total = 0.0;
        let mut cb = vec![0.0; self.m];
        for (row, &j) in self.basic.iter().enumerate() {
            let xj = self.x[j];
            if xj < self.lp.lower[j] - FEAS_TOL {
                cb[row] = -1.0;
                total += self.lp.lower[j] - xj;
            } else if xj > self.lp.upper[j] + FEAS_TOL {
                cb[row] = 1.0;
                total += xj - self.lp.upper[j];
            }
        }
        (total, cb)
    }

    fn run(mut self) -> Result<PreparedSolution, LpError> {
        self.stats.phase1_iterations = self.iterate(Phase::One)?;
        self.stats.phase2_iterations = self.iterate(Phase::Two)?;

        let reduced_values = self.x[..self.lp.nvars].to_vec();
        let values = self.lp.expand_values(reduced_values);
        let objective = self.lp.user_objective_value(&values);
        Ok(PreparedSolution {
            solution: Solution {
                objective,
                values,
                stats: self.stats,
            },
            basis: Basis {
                basic: self.basic,
                status: self.status,
                factor: Some(BasisFactor {
                    kind: self.factor.into_carried(),
                    fingerprint: self.lp.fingerprint,
                }),
            },
        })
    }

    /// Runs simplex iterations for one phase; returns the pivot count.
    fn iterate(&mut self, phase: Phase) -> Result<usize, LpError> {
        let tol = self.options.tol;
        let pivot_tol = PIVOT_TOL.max(tol);
        let mut iterations = 0usize;
        loop {
            // Phase-dependent cost of the current basis. Phase-1 costs depend
            // on which basics are out of bounds, so they are recomputed every
            // iteration.
            let cb: Vec<f64> = match phase {
                Phase::One => {
                    let (infeasibility, cb) = self.infeasibility();
                    if infeasibility <= FEAS_TOL {
                        return Ok(iterations);
                    }
                    cb
                }
                Phase::Two => self.basic.iter().map(|&j| self.lp.cost[j]).collect(),
            };
            if iterations >= self.options.max_iterations {
                return Err(LpError::IterationLimit {
                    limit: self.options.max_iterations,
                });
            }
            let use_bland = iterations >= self.options.bland_after;
            let y = self.btran(&cb);

            // Pricing: pick an entering nonbasic column whose reduced cost
            // improves the phase objective in its admissible direction.
            let mut entering: Option<(usize, f64)> = None; // (col, direction)
            let mut best_score = tol;
            for j in 0..self.lp.ncols {
                if self.status[j] == VarStatus::Basic || self.lp.lower[j] == self.lp.upper[j] {
                    continue;
                }
                let cj = match phase {
                    Phase::One => 0.0,
                    Phase::Two => self.lp.cost[j],
                };
                let d = cj - self.lp.a.col_dot(j, &y);
                let (score, dir) = match self.status[j] {
                    VarStatus::AtLower => (-d, 1.0),
                    VarStatus::AtUpper => (d, -1.0),
                    VarStatus::Free => (d.abs(), if d < 0.0 { 1.0 } else { -1.0 }),
                    VarStatus::Basic => unreachable!(),
                };
                if score > tol {
                    if use_bland {
                        entering = Some((j, dir));
                        break;
                    }
                    if score > best_score {
                        best_score = score;
                        entering = Some((j, dir));
                    }
                }
            }
            let Some((q, dir)) = entering else {
                return match phase {
                    // Phase-1 optimum with residual infeasibility (checked at
                    // the top of the loop): no feasible point exists.
                    Phase::One => Err(LpError::Infeasible),
                    Phase::Two => Ok(iterations),
                };
            };

            let w = self.ftran(q);

            // Ratio test. The entering variable moves by `t ≥ 0` in direction
            // `dir`; basic `row` changes as `x − t·dir·w[row]`. The entering
            // variable's own opposite bound caps the step (a *bound flip*
            // when nothing blocks earlier); with any infinite bound the range
            // is infinite.
            let mut t_best = self.lp.upper[q] - self.lp.lower[q];
            let mut leaving: Option<(usize, VarStatus)> = None;
            for row in 0..self.m {
                let wi = w[row];
                if wi.abs() <= pivot_tol {
                    continue;
                }
                let j = self.basic[row];
                let xj = self.x[j];
                let delta = dir * wi; // x_Bj decreases at rate `delta` per unit t
                let (target, leave_status) = if delta > 0.0 {
                    if phase == Phase::One && xj < self.lp.lower[j] - FEAS_TOL {
                        // Already below its lower bound and moving further
                        // down: the phase-1 cost accounts for it linearly, so
                        // it never blocks.
                        continue;
                    }
                    if phase == Phase::One && xj > self.lp.upper[j] + FEAS_TOL {
                        // Above its upper bound, moving down: it leaves when
                        // it *reaches* the violated bound.
                        (self.lp.upper[j], VarStatus::AtUpper)
                    } else {
                        (self.lp.lower[j], VarStatus::AtLower)
                    }
                } else {
                    if phase == Phase::One && xj > self.lp.upper[j] + FEAS_TOL {
                        continue;
                    }
                    if phase == Phase::One && xj < self.lp.lower[j] - FEAS_TOL {
                        (self.lp.lower[j], VarStatus::AtLower)
                    } else {
                        (self.lp.upper[j], VarStatus::AtUpper)
                    }
                };
                if !target.is_finite() {
                    continue;
                }
                let ratio = ((xj - target) / delta).max(0.0);
                let accept = match leaving {
                    None => ratio < t_best + tol,
                    Some((l, _)) => {
                        if ratio < t_best - tol {
                            true
                        } else if ratio < t_best + tol {
                            if use_bland {
                                // Bland's tie-break: smallest basic index
                                // leaves.
                                self.basic[row] < self.basic[l]
                            } else {
                                // Stability tie-break: larger pivot element.
                                wi.abs() > w[l].abs()
                            }
                        } else {
                            false
                        }
                    }
                };
                if accept {
                    t_best = t_best.min(ratio);
                    leaving = Some((row, leave_status));
                }
            }

            if t_best.is_infinite() {
                return match phase {
                    // A phase-1 objective is bounded below by zero, so an
                    // unblocked improving ray can only be numerical noise;
                    // report a stall so the Bland retry takes over.
                    Phase::One => Err(LpError::IterationLimit {
                        limit: self.options.max_iterations,
                    }),
                    Phase::Two => Err(LpError::Unbounded),
                };
            }

            // Apply the step.
            let t = t_best;
            if t != 0.0 {
                for (&j, &wi) in self.basic.iter().zip(&w) {
                    self.x[j] -= t * dir * wi;
                }
            }
            match leaving {
                None => {
                    // Bound flip: the entering variable runs to its opposite
                    // bound; the basis is unchanged.
                    self.status[q] = if dir > 0.0 {
                        VarStatus::AtUpper
                    } else {
                        VarStatus::AtLower
                    };
                    self.x[q] = self.nonbasic_value(q);
                    self.stats.bound_flips += 1;
                }
                Some((row, leave_status)) => {
                    let out = self.basic[row];
                    self.x[q] = self.nonbasic_value(q) + dir * t;
                    self.status[out] = leave_status;
                    // Snap the leaving variable exactly onto its bound to
                    // stop drift accumulating along a chain of pivots.
                    self.x[out] = match leave_status {
                        VarStatus::AtLower => self.lp.lower[out],
                        VarStatus::AtUpper => self.lp.upper[out],
                        _ => unreachable!("leaving variable always lands on a bound"),
                    };
                    self.basic[row] = q;
                    self.status[q] = VarStatus::Basic;
                    self.factor.update(row, &w);
                    self.stats.basis_updates += 1;
                    self.since_refactor += 1;
                    // The eta file is bounded: hitting the cap forces a
                    // refactorization regardless of drift (applying a long
                    // eta file costs more than refactorizing, and its error
                    // compounds). The dense representation updates in place
                    // and never reports pending updates.
                    let cap_hit = self.factor.pending_updates() >= self.options.update_cap.max(1);
                    if cap_hit || self.since_refactor >= self.options.refactor_every.max(1) {
                        self.since_refactor = 0;
                        // Refactorizing from scratch is expensive, so outside
                        // the cap it is gated on an O(nnz) drift check: only
                        // a primal residual above tolerance triggers the
                        // rebuild. Well-scaled instances (the mechanism's
                        // ±1-coefficient LPs) essentially never pay it.
                        if cap_hit || self.primal_residual() > REFRESH_TOL {
                            if self.refactorize().is_err() {
                                return Err(LpError::IterationLimit {
                                    limit: self.options.max_iterations,
                                });
                            }
                            self.stats.refactorizations += 1;
                            self.compute_x();
                        }
                    }
                }
            }
            iterations += 1;
        }
    }
}

/// Initial nonbasic status for a structural variable given its bounds.
fn initial_status(lower: f64, upper: f64) -> VarStatus {
    if lower.is_finite() {
        VarStatus::AtLower
    } else if upper.is_finite() {
        VarStatus::AtUpper
    } else {
        VarStatus::Free
    }
}

/// Structural sanity of a warm basis: right shapes, exactly the basic
/// columns flagged `Basic`, and every nonbasic resting on a bound that
/// exists.
fn basis_is_consistent(lp: &PreparedLp, basis: &Basis) -> bool {
    if basis.basic.len() != lp.nrows || basis.status.len() != lp.ncols {
        return false;
    }
    let mut seen = vec![false; lp.ncols];
    for &j in &basis.basic {
        if j >= lp.ncols || seen[j] || basis.status[j] != VarStatus::Basic {
            return false;
        }
        seen[j] = true;
    }
    for (j, &s) in basis.status.iter().enumerate() {
        match s {
            VarStatus::Basic => {
                if !seen[j] {
                    return false;
                }
            }
            VarStatus::AtLower => {
                if !lp.lower[j].is_finite() {
                    return false;
                }
            }
            VarStatus::AtUpper => {
                if !lp.upper[j].is_finite() {
                    return false;
                }
            }
            VarStatus::Free => {}
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> SimplexOptions {
        SimplexOptions::default()
    }

    fn dense_opts() -> SimplexOptions {
        SimplexOptions {
            backend: SolverBackend::Revised,
            ..SimplexOptions::default()
        }
    }

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    /// The H-style family: hinges over the capped simplex with a mass row.
    fn hinge_family(mass: f64) -> Model {
        let mut m = Model::minimize();
        let f: Vec<_> = (0..5).map(|_| m.add_unit_var(0.0)).collect();
        // Mass row first so set_rhs(0, i) steps the chain.
        m.add_eq(f.iter().map(|&x| (x, 1.0)), mass);
        for window in f.windows(3) {
            let v = m.add_nonneg_var(1.0);
            let mut terms = vec![(v, -1.0)];
            terms.extend(window.iter().map(|&x| (x, 1.0)));
            m.add_le(terms, 2.0);
        }
        m
    }

    #[test]
    fn boxed_variables_take_no_extra_rows_or_columns() {
        let mut m = Model::minimize();
        let x = m.add_unit_var(-1.0);
        let y = m.add_var(-2.0, 3.0, 1.0);
        m.add_le([(x, 1.0), (y, 1.0)], 2.0);
        let prepared = m.prepare().unwrap();
        // 2 structural + 1 slack, 1 row: bounds are native, not rows.
        assert_eq!(prepared.num_rows(), 1);
        assert_eq!(prepared.num_cols(), 3);
        let s = m.solve().unwrap();
        assert_close(s.value(x), 1.0);
        assert_close(s.value(y), -2.0);
        assert_close(s.objective, -3.0);
    }

    #[test]
    fn warm_start_after_rhs_step_skips_phase_one() {
        let m = hinge_family(1.0);
        let mut prepared = m.prepare().unwrap();
        let first = prepared.solve(&opts()).unwrap();
        assert!(!first.solution.stats.warm_started);

        prepared.set_rhs(0, 2.0);
        let second = prepared.solve_warm(&first.basis, &opts()).unwrap();
        assert!(second.solution.stats.warm_started);
        // The dense oracle agrees on the stepped instance.
        let oracle = hinge_family(2.0)
            .solve_with(&SimplexOptions {
                backend: SolverBackend::DenseTableau,
                ..opts()
            })
            .unwrap();
        assert_close(second.solution.objective, oracle.objective);
    }

    #[test]
    fn warm_chain_matches_cold_solves_and_spends_fewer_pivots() {
        for options in [opts(), dense_opts()] {
            let mut prepared = hinge_family(0.0).prepare().unwrap();
            let mut basis: Option<crate::Basis> = None;
            let mut warm_pivots = 0usize;
            let mut cold_pivots = 0usize;
            for i in 0..=5usize {
                prepared.set_rhs(0, i as f64);
                let warm = match &basis {
                    None => prepared.solve(&options).unwrap(),
                    Some(b) => prepared.solve_warm(b, &options).unwrap(),
                };
                let cold = prepared.solve(&options).unwrap();
                assert_close(warm.solution.objective, cold.solution.objective);
                warm_pivots +=
                    warm.solution.stats.phase1_iterations + warm.solution.stats.phase2_iterations;
                cold_pivots +=
                    cold.solution.stats.phase1_iterations + cold.solution.stats.phase2_iterations;
                basis = Some(warm.basis);
            }
            assert!(
                warm_pivots < cold_pivots,
                "warm chain spent {warm_pivots} pivots vs cold {cold_pivots}"
            );
        }
    }

    #[test]
    fn set_objective_changes_are_picked_up() {
        let mut m = Model::minimize();
        let x = m.add_unit_var(1.0);
        let y = m.add_unit_var(2.0);
        m.add_ge([(x, 1.0), (y, 1.0)], 1.0);
        let mut prepared = m.prepare().unwrap();
        let first = prepared.solve(&opts()).unwrap();
        assert_close(first.solution.objective, 1.0);
        // Make y the cheap variable; the optimum flips to y = 1.
        prepared.set_objective(y, 0.5);
        let second = prepared.solve_warm(&first.basis, &opts()).unwrap();
        assert_close(second.solution.objective, 0.5);
        assert_close(second.solution.values[y.index()], 1.0);
    }

    #[test]
    fn infeasible_and_unbounded_verdicts_survive_warm_starts() {
        let mut m = Model::minimize();
        let x = m.add_unit_var(1.0);
        m.add_ge([(x, 1.0)], 0.5);
        let mut prepared = m.prepare().unwrap();
        let sol = prepared.solve(&opts()).unwrap();
        // Step the RHS beyond the box: infeasible from the warm basis.
        prepared.set_rhs(0, 2.0);
        match prepared.solve_warm(&sol.basis, &opts()) {
            Err(LpError::Infeasible) => {}
            other => panic!("expected Infeasible, got {other:?}"),
        }

        let mut m = Model::maximize();
        let x = m.add_nonneg_var(1.0);
        m.add_ge([(x, 1.0)], 1.0);
        match m.solve() {
            Err(LpError::Unbounded) => {}
            other => panic!("expected Unbounded, got {other:?}"),
        }
    }

    #[test]
    fn a_stale_basis_from_another_shape_falls_back_to_cold() {
        let small = hinge_family(1.0).prepare().unwrap();
        let small_solution = small.solve(&opts()).unwrap();
        let mut other = Model::minimize();
        let x = other.add_unit_var(1.0);
        other.add_ge([(x, 1.0)], 0.25);
        let other = other.prepare().unwrap();
        let sol = other.solve_warm(&small_solution.basis, &opts()).unwrap();
        assert_close(sol.solution.objective, 0.25);
        assert!(!sol.solution.stats.warm_started);
    }

    #[test]
    fn unconstrained_model_settles_on_bounds() {
        // No rows at all: every variable just runs to its cheaper bound.
        let mut m = Model::minimize();
        let x = m.add_var(-1.0, 2.0, 1.0);
        let y = m.add_var(-3.0, 4.0, -1.0);
        let s = m.solve().unwrap();
        assert_close(s.value(x), -1.0);
        assert_close(s.value(y), 4.0);
        assert_close(s.objective, -5.0);
    }

    #[test]
    fn free_variable_without_constraints_is_unbounded() {
        let mut m = Model::minimize();
        m.add_var(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        match m.solve() {
            Err(LpError::Unbounded) => {}
            other => panic!("expected Unbounded, got {other:?}"),
        }
    }

    #[test]
    fn refactorization_interval_does_not_change_the_optimum() {
        let m = hinge_family(3.5);
        let baseline = m.solve().unwrap();
        let frequent = m
            .solve_with(&SimplexOptions {
                refactor_every: 1,
                ..opts()
            })
            .unwrap();
        assert_close(baseline.objective, frequent.objective);
        assert!(frequent.stats.refactorizations >= baseline.stats.refactorizations);
    }

    #[test]
    fn a_tight_eta_cap_does_not_change_the_optimum() {
        let m = hinge_family(3.5);
        let baseline = m.solve().unwrap();
        let capped = m
            .solve_with(&SimplexOptions {
                update_cap: 1,
                ..opts()
            })
            .unwrap();
        assert_close(baseline.objective, capped.objective);
        // Every pivot past the first forces a refactorization.
        assert!(capped.stats.refactorizations >= baseline.stats.refactorizations);
    }

    #[test]
    fn fixed_variables_stay_fixed() {
        let mut m = Model::minimize();
        let x = m.add_var(2.5, 2.5, -10.0);
        let y = m.add_unit_var(1.0);
        m.add_ge([(x, 1.0), (y, 1.0)], 3.0);
        let s = m.solve().unwrap();
        assert_close(s.value(x), 2.5);
        assert_close(s.value(y), 0.5);
    }

    #[test]
    fn negative_rhs_rows_are_handled_without_sign_normalisation() {
        // min x  s.t.  -x <= -2  (i.e. x >= 2), x in [0, 5].
        let mut m = Model::minimize();
        let x = m.add_var(0.0, 5.0, 1.0);
        m.add_le([(x, -1.0)], -2.0);
        let s = m.solve().unwrap();
        assert_close(s.value(x), 2.0);
    }

    #[test]
    fn all_three_backends_agree_on_the_mechanism_shape() {
        for mass in [0.0, 1.0, 2.5, 4.0, 5.0] {
            let m = hinge_family(mass);
            let sparse = m.solve().unwrap();
            let dense_inv = m.solve_with(&dense_opts()).unwrap();
            let tableau = m
                .solve_with(&SimplexOptions {
                    backend: SolverBackend::DenseTableau,
                    ..opts()
                })
                .unwrap();
            assert!(
                (sparse.objective - tableau.objective).abs() < 1e-7,
                "mass {mass}: sparse {} vs tableau {}",
                sparse.objective,
                tableau.objective
            );
            // The two revised backends share pivot logic and run exact
            // arithmetic on these ±1-coefficient instances: bitwise equal.
            assert_eq!(
                sparse.objective.to_bits(),
                dense_inv.objective.to_bits(),
                "mass {mass}: sparse-LU {} vs dense-inverse {}",
                sparse.objective,
                dense_inv.objective
            );
        }
    }

    #[test]
    fn warm_handoff_shares_the_lu_base_without_deep_copies() {
        let prepared = hinge_family(2.0).prepare().unwrap();
        let first = prepared.solve(&opts()).unwrap();
        // Re-solving the unchanged instance warm needs zero pivots, so the
        // carried factorization must be reused as-is (same Arc), not cloned.
        let second = prepared.solve_warm(&first.basis, &opts()).unwrap();
        assert_eq!(
            second.solution.stats.phase1_iterations + second.solution.stats.phase2_iterations,
            0
        );
        let (Some(a), Some(b)) = (&first.basis.factor, &second.basis.factor) else {
            panic!("both solves must carry factors");
        };
        match (&a.kind, &b.kind) {
            (FactorKind::Lu(x), FactorKind::Lu(y)) => {
                assert!(x.shares_base_with(y), "LU base was deep-copied on hand-off");
            }
            other => panic!("expected sparse-LU factors, got {other:?}"),
        }
    }

    #[test]
    fn dense_warm_handoff_shares_the_inverse_until_first_pivot() {
        let prepared = hinge_family(2.0).prepare().unwrap();
        let first = prepared.solve(&dense_opts()).unwrap();
        let second = prepared.solve_warm(&first.basis, &dense_opts()).unwrap();
        assert_eq!(
            second.solution.stats.phase1_iterations + second.solution.stats.phase2_iterations,
            0
        );
        let (Some(a), Some(b)) = (&first.basis.factor, &second.basis.factor) else {
            panic!("both solves must carry factors");
        };
        match (&a.kind, &b.kind) {
            (FactorKind::Dense(x), FactorKind::Dense(y)) => {
                assert!(
                    x.shares_storage_with(y),
                    "dense inverse was deep-copied on a pivot-free hand-off"
                );
            }
            other => panic!("expected dense factors, got {other:?}"),
        }
    }

    #[test]
    fn a_warm_basis_without_a_factor_is_refactorized_on_entry() {
        for options in [opts(), dense_opts()] {
            let mut prepared = hinge_family(1.0).prepare().unwrap();
            let first = prepared.solve(&options).unwrap();
            prepared.set_rhs(0, 2.0);
            // A basis stripped of its factor (or carrying one from the other
            // backend) must refactorize on entry and still agree with cold.
            let stripped = Basis {
                basic: first.basis.basic.clone(),
                status: first.basis.status.clone(),
                factor: None,
            };
            let warm = prepared.solve_warm(&stripped, &options).unwrap();
            assert!(warm.solution.stats.warm_started);
            let cold = prepared.solve(&options).unwrap();
            assert_close(warm.solution.objective, cold.solution.objective);
        }
    }

    #[test]
    fn a_basis_carried_across_backends_still_warm_starts() {
        // Solve on the dense backend, hand the basis to the sparse backend:
        // the carried dense factor cannot be reused, but the basis itself
        // can — the sparse backend refactorizes and re-enters warm.
        let mut prepared = hinge_family(1.0).prepare().unwrap();
        let dense = prepared.solve(&dense_opts()).unwrap();
        prepared.set_rhs(0, 3.0);
        let warm = prepared.solve_warm(&dense.basis, &opts()).unwrap();
        assert!(warm.solution.stats.warm_started);
        let cold = prepared.solve(&opts()).unwrap();
        assert_close(warm.solution.objective, cold.solution.objective);
    }

    #[test]
    fn lu_solves_report_fill_in_and_update_counters() {
        let s = hinge_family(3.0).solve().unwrap();
        assert!(s.stats.fill_in_nnz > 0, "sparse solves track factor nnz");
        assert!(
            s.stats.basis_updates
                >= s.stats
                    .phase2_iterations
                    .saturating_sub(s.stats.bound_flips),
            "every true pivot applies one basis update"
        );
        let d = hinge_family(3.0).solve_with(&dense_opts()).unwrap();
        assert_eq!(d.stats.fill_in_nnz, 0, "dense backend tracks no fill-in");
    }
}
