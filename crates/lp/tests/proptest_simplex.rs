//! Property-based tests for the simplex solver.
//!
//! For random small LPs over box-bounded variables the solver's answer is
//! checked against a rejection-sampled feasible set: the returned point must
//! be feasible and no sampled feasible point may be better.

use proptest::prelude::*;
use rmdp_lp::{ConstraintOp, LpError, Model, Sense};

#[derive(Clone, Debug)]
struct RandomLp {
    n_vars: usize,
    objective: Vec<f64>,
    // (coefficients, op_le, rhs)
    constraints: Vec<(Vec<f64>, bool, f64)>,
}

fn random_lp() -> impl Strategy<Value = RandomLp> {
    (2usize..=4)
        .prop_flat_map(|n_vars| {
            let obj = proptest::collection::vec(-3.0..3.0f64, n_vars);
            let cons = proptest::collection::vec(
                (
                    proptest::collection::vec(-2.0..2.0f64, n_vars),
                    any::<bool>(),
                    -1.0..3.0f64,
                ),
                1..5,
            );
            (Just(n_vars), obj, cons)
        })
        .prop_map(|(n_vars, objective, constraints)| RandomLp {
            n_vars,
            objective,
            constraints,
        })
}

fn build_model(lp: &RandomLp) -> (Model, Vec<rmdp_lp::Var>) {
    let mut m = Model::new(Sense::Minimize);
    let vars: Vec<_> = lp
        .objective
        .iter()
        .map(|&c| m.add_var(0.0, 1.0, c))
        .collect();
    for (coeffs, le, rhs) in &lp.constraints {
        let terms: Vec<_> = vars.iter().copied().zip(coeffs.iter().copied()).collect();
        let op = if *le {
            ConstraintOp::Le
        } else {
            ConstraintOp::Ge
        };
        m.add_constraint(terms, op, *rhs);
    }
    (m, vars)
}

fn is_feasible(lp: &RandomLp, x: &[f64], tol: f64) -> bool {
    for (coeffs, le, rhs) in &lp.constraints {
        let lhs: f64 = coeffs.iter().zip(x).map(|(a, v)| a * v).sum();
        let ok = if *le {
            lhs <= rhs + tol
        } else {
            lhs >= rhs - tol
        };
        if !ok {
            return false;
        }
    }
    x.iter().all(|&v| (-tol..=1.0 + tol).contains(&v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The solver never returns an infeasible point, and when it declares
    /// optimality no sampled feasible point beats it.
    #[test]
    fn simplex_solution_is_feasible_and_not_dominated(lp in random_lp(), seed in any::<u64>()) {
        let (model, _vars) = build_model(&lp);
        let solved = model.solve();

        // Sample candidate feasible points on a coarse grid plus random
        // points derived from the seed.
        let mut feasible_points: Vec<Vec<f64>> = Vec::new();
        let steps = 4usize;
        let total = (steps + 1).pow(lp.n_vars as u32);
        for idx in 0..total {
            let mut x = vec![0.0; lp.n_vars];
            let mut rest = idx;
            for v in x.iter_mut() {
                *v = (rest % (steps + 1)) as f64 / steps as f64;
                rest /= steps + 1;
            }
            if is_feasible(&lp, &x, 1e-9) {
                feasible_points.push(x);
            }
        }
        let mut state = seed;
        let mut next01 = || {
            // xorshift-based deterministic pseudo-random in [0, 1]
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..200 {
            let x: Vec<f64> = (0..lp.n_vars).map(|_| next01()).collect();
            if is_feasible(&lp, &x, 1e-9) {
                feasible_points.push(x);
            }
        }

        match solved {
            Ok(sol) => {
                prop_assert!(is_feasible(&lp, &sol.values, 1e-6),
                    "solver returned infeasible point {:?}", sol.values);
                let obj = |x: &[f64]| -> f64 {
                    lp.objective.iter().zip(x).map(|(c, v)| c * v).sum()
                };
                prop_assert!((obj(&sol.values) - sol.objective).abs() < 1e-6);
                for p in &feasible_points {
                    prop_assert!(sol.objective <= obj(p) + 1e-6,
                        "sampled point {:?} with objective {} beats reported optimum {}",
                        p, obj(p), sol.objective);
                }
            }
            Err(LpError::Infeasible) => {
                // No sampled point may be strictly feasible.
                for p in &feasible_points {
                    prop_assert!(!is_feasible(&lp, p, -1e-6),
                        "solver said infeasible but {:?} is strictly feasible", p);
                }
            }
            Err(LpError::Unbounded) => {
                // Impossible: all variables live in [0, 1].
                prop_assert!(false, "bounded LP reported as unbounded");
            }
            Err(other) => {
                prop_assert!(false, "unexpected solver error: {other}");
            }
        }
    }

    /// Adding a redundant constraint never changes the optimum.
    #[test]
    fn redundant_constraints_do_not_change_optimum(lp in random_lp()) {
        let (model, _) = build_model(&lp);
        if let Ok(base) = model.solve() {
            let (mut with_redundant, vars) = build_model(&lp);
            // x_0 <= 2 is implied by the unit box.
            with_redundant.add_le([(vars[0], 1.0)], 2.0);
            let again = with_redundant.solve().expect("still solvable");
            prop_assert!((again.objective - base.objective).abs() < 1e-6);
        }
    }
}

// ---- Differential testing: revised simplex vs the dense tableau oracle ----

/// A random LP over *general* bounded variables: shifted boxes, one-sided
/// bounds, fixed variables and free variables — every shape the two
/// standardizations handle differently (the revised backend keeps bounds
/// native; the dense oracle shifts, reflects, splits and adds bound rows).
#[derive(Clone, Debug)]
struct BoundedLp {
    bounds: Vec<(f64, f64)>,
    objective: Vec<f64>,
    constraints: Vec<(Vec<f64>, u8, f64)>, // op: 0 = Le, 1 = Ge, 2 = Eq
}

fn bound_pair() -> impl Strategy<Value = (f64, f64)> {
    prop_oneof![
        // Shifted box.
        (-3.0..0.0f64, 0.0..3.0f64),
        // Unit box (the mechanism's f-variables).
        Just((0.0, 1.0)),
        // One-sided: lower only / upper only.
        (-2.0..1.0f64).prop_map(|l| (l, f64::INFINITY)),
        (-1.0..2.0f64).prop_map(|u| (f64::NEG_INFINITY, u)),
        // Fixed.
        (-1.0..1.0f64).prop_map(|v| (v, v)),
        // Free.
        Just((f64::NEG_INFINITY, f64::INFINITY)),
    ]
}

fn bounded_lp() -> impl Strategy<Value = BoundedLp> {
    (2usize..=5)
        .prop_flat_map(|n_vars| {
            let bounds = proptest::collection::vec(bound_pair(), n_vars);
            let obj = proptest::collection::vec(-3.0..3.0f64, n_vars);
            let cons = proptest::collection::vec(
                (
                    proptest::collection::vec(-2.0..2.0f64, n_vars),
                    0u8..3,
                    -2.0..3.0f64,
                ),
                1..5,
            );
            (bounds, obj, cons)
        })
        .prop_map(|(bounds, objective, constraints)| BoundedLp {
            bounds,
            objective,
            constraints,
        })
}

fn build_bounded(lp: &BoundedLp) -> Model {
    let mut m = Model::new(Sense::Minimize);
    let vars: Vec<_> = lp
        .bounds
        .iter()
        .zip(&lp.objective)
        .map(|(&(lo, hi), &c)| m.add_var(lo, hi, c))
        .collect();
    for (coeffs, op, rhs) in &lp.constraints {
        let terms: Vec<_> = vars.iter().copied().zip(coeffs.iter().copied()).collect();
        let op = match op {
            0 => ConstraintOp::Le,
            1 => ConstraintOp::Ge,
            _ => ConstraintOp::Eq,
        };
        m.add_constraint(terms, op, *rhs);
    }
    m
}

/// Feasibility of a point in the *original* (pre-presolve) bounded model.
fn bounded_feasible(lp: &BoundedLp, x: &[f64], tol: f64) -> bool {
    for ((lo, hi), v) in lp.bounds.iter().zip(x) {
        if *v < lo - tol || *v > hi + tol {
            return false;
        }
    }
    for (coeffs, op, rhs) in &lp.constraints {
        let lhs: f64 = coeffs.iter().zip(x).map(|(a, v)| a * v).sum();
        let ok = match op {
            0 => lhs <= rhs + tol,
            1 => lhs >= rhs - tol,
            _ => (lhs - rhs).abs() <= tol,
        };
        if !ok {
            return false;
        }
    }
    true
}

/// Whether a free/one-sided variable makes the instance unbounded is a
/// question both backends must answer the same way, and on bounded optima
/// the values must agree. Iteration limits are treated as "no verdict".
fn verdict(result: &Result<rmdp_lp::Solution, LpError>) -> Option<Result<f64, &LpError>> {
    match result {
        Ok(s) => Some(Ok(s.objective)),
        Err(e @ (LpError::Infeasible | LpError::Unbounded)) => Some(Err(e)),
        Err(_) => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// All three backends — sparse-LU revised (default), dense-`B⁻¹` revised
    /// and the dense tableau — agree on every random bounded-variable LP:
    /// same optimum within tolerance, or the same infeasible/unbounded
    /// verdict.
    #[test]
    fn revised_and_dense_backends_agree(lp in bounded_lp()) {
        let model = build_bounded(&lp);
        let sparse = model.solve_with(&rmdp_lp::SimplexOptions {
            backend: rmdp_lp::SolverBackend::SparseLu,
            ..Default::default()
        });
        let revised = model.solve_with(&rmdp_lp::SimplexOptions {
            backend: rmdp_lp::SolverBackend::Revised,
            ..Default::default()
        });
        let dense = model.solve_with(&rmdp_lp::SimplexOptions {
            backend: rmdp_lp::SolverBackend::DenseTableau,
            ..Default::default()
        });
        for (name, other) in [("dense B⁻¹", &revised), ("dense tableau", &dense)] {
            match (verdict(&sparse), verdict(other)) {
                (Some(Ok(a)), Some(Ok(b))) => {
                    prop_assert!((a - b).abs() < 1e-6,
                        "optima differ: sparse-LU {a} vs {name} {b}");
                }
                (Some(Err(a)), Some(Err(b))) => {
                    prop_assert_eq!(a, b, "verdicts differ vs {}", name);
                }
                (Some(a), Some(b)) => {
                    prop_assert!(false, "sparse-LU says {a:?}, {name} says {b:?}");
                }
                // A backend giving up (iteration limit) is not a disagreement.
                _ => {}
            }
        }
    }

    /// Presolve + postsolve is invisible: the reduced-then-reconstructed
    /// solve reaches the same verdict and objective as the raw solver, and
    /// the reconstructed point is feasible in the *original* model.
    #[test]
    fn presolve_reaches_the_same_answer_as_the_raw_solver(lp in bounded_lp()) {
        let model = build_bounded(&lp);
        let with = model.solve(); // presolve on by default
        let without = model.solve_with(&rmdp_lp::SimplexOptions {
            presolve: false,
            ..Default::default()
        });
        match (verdict(&with), verdict(&without)) {
            (Some(Ok(a)), Some(Ok(b))) => {
                prop_assert!((a - b).abs() < 1e-6,
                    "optima differ: presolved {a} vs raw {b}");
                let sol = with.as_ref().unwrap();
                prop_assert!(bounded_feasible(&lp, &sol.values, 1e-6),
                    "postsolved point {:?} violates the original model", sol.values);
            }
            (Some(Err(a)), Some(Err(b))) => {
                prop_assert_eq!(a, b, "verdicts differ");
            }
            (Some(a), Some(b)) => {
                prop_assert!(false, "presolved says {a:?}, raw says {b:?}");
            }
            _ => {}
        }
    }

    /// The same agreement on reduction-rich instances: duplicated columns, a
    /// singleton row and a fixed variable grafted onto every model, so the
    /// presolve passes all fire and must still be invisible.
    #[test]
    fn presolve_is_invisible_on_reduction_rich_models(lp in bounded_lp(), dup_cost in -2.0..2.0f64, singleton_cap in 0.5..3.0f64) {
        let mut model = build_bounded(&lp);
        // Two duplicate columns (identical pattern + cost) in a fresh row.
        let d1 = model.add_var(0.0, 1.0, dup_cost);
        let d2 = model.add_var(0.0, 1.0, dup_cost);
        model.add_le([(d1, 1.0), (d2, 1.0)], 1.5);
        // A singleton row bounding d1, and a fixed variable in that row's
        // shadow to exercise substitution.
        model.add_le([(d1, 1.0)], singleton_cap);
        let fixed = model.add_var(0.25, 0.25, 1.0);
        model.add_le([(fixed, 1.0), (d2, 1.0)], 2.0);

        let with = model.solve();
        let without = model.solve_with(&rmdp_lp::SimplexOptions {
            presolve: false,
            ..Default::default()
        });
        match (verdict(&with), verdict(&without)) {
            (Some(Ok(a)), Some(Ok(b))) => {
                prop_assert!((a - b).abs() < 1e-6,
                    "optima differ: presolved {a} vs raw {b}");
                let sol = with.as_ref().unwrap();
                let raw = without.as_ref().unwrap();
                prop_assert_eq!(sol.values.len(), raw.values.len(),
                    "postsolve must report the full variable space");
                prop_assert!((sol.values[fixed.index()] - 0.25).abs() < 1e-9);
            }
            (Some(Err(a)), Some(Err(b))) => {
                prop_assert_eq!(a, b, "verdicts differ");
            }
            (Some(a), Some(b)) => {
                prop_assert!(false, "presolved says {a:?}, raw says {b:?}");
            }
            _ => {}
        }
    }

    /// A warm-started RHS chain returns the same optima as cold re-solves of
    /// every step (the PreparedLp contract the sequence chains rely on).
    #[test]
    fn warm_chain_matches_cold_solves(lp in bounded_lp(), steps in proptest::collection::vec(-2.0..3.0f64, 1..5)) {
        let model = build_bounded(&lp);
        let options = rmdp_lp::SimplexOptions::default();
        let mut prepared = model.prepare().expect("validated by construction");
        let mut basis = if prepared.num_rows() == 0 {
            None
        } else {
            prepared.solve(&options).ok().map(|s| s.basis)
        };
        let mut k = 0usize;
        while let Some(prev) = basis.take() {
            let Some(&rhs) = steps.get(k) else { break };
            prepared.set_rhs(k % prepared.num_rows(), rhs);
            let warm = prepared.solve_warm(&prev, &options);
            let cold = prepared.solve(&options);
            let warm_solution = warm
                .as_ref()
                .map(|s| s.solution.clone())
                .map_err(|e| e.clone());
            let cold_solution = cold
                .as_ref()
                .map(|s| s.solution.clone())
                .map_err(|e| e.clone());
            match (verdict(&warm_solution), verdict(&cold_solution)) {
                (Some(Ok(a)), Some(Ok(b))) => {
                    prop_assert!((a - b).abs() < 1e-6,
                        "step {k}: warm {a} vs cold {b}");
                }
                (Some(Err(_)), Some(Err(_))) => {}
                (Some(a), Some(b)) => {
                    prop_assert!(false, "step {k}: warm says {a:?}, cold says {b:?}");
                }
                _ => {}
            }
            basis = warm.ok().map(|s| s.basis);
            k += 1;
        }
    }
}
