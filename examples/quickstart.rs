//! Quickstart: node-differentially-private triangle counting.
//!
//! Builds a small social network, counts its triangles with the recursive
//! mechanism under **node** differential privacy (ε = 1), and prints the true
//! and released counts. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use recursive_mechanism_dp::core::params::MechanismParams;
use recursive_mechanism_dp::core::subgraph::{PrivacyUnit, SubgraphCounter};
use recursive_mechanism_dp::graph::{generators, Pattern};

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);

    // A synthetic social network: 120 people, ~8 friends each.
    let graph = generators::gnp_average_degree(120, 8.0, &mut rng);
    println!(
        "graph: {} people, {} friendships",
        graph.num_nodes(),
        graph.num_edges()
    );

    // Node privacy protects each person together with all of their
    // friendships — the guarantee no prior subgraph-counting mechanism could
    // offer.
    let counter = SubgraphCounter::new(
        Pattern::triangle(),
        PrivacyUnit::Node,
        MechanismParams::paper_node_privacy(1.0),
    );

    let mut prepared = counter.prepare(&graph).expect("mechanism setup");
    println!(
        "matched {} triangles; universal empirical sensitivity = {}",
        prepared.support_size, prepared.universal_sensitivity
    );

    let answer = prepared.release(&mut rng).expect("release");
    println!("true triangle count      : {}", answer.true_count);
    println!("released (1-DP, node)    : {:.1}", answer.noisy_count);
    println!(
        "relative error           : {:.3}",
        (answer.noisy_count - answer.true_count).abs() / answer.true_count
    );

    // Additional releases reuse the cached sequences and each spend another
    // ε of privacy budget.
    let more = prepared.release_many(5, &mut rng).expect("releases");
    let answers: Vec<String> = more
        .iter()
        .map(|a| format!("{:.1}", a.noisy_count))
        .collect();
    println!("five more releases        : {}", answers.join(", "));
}
