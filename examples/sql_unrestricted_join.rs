//! Unrestricted joins over a multi-table sensitive database — now posed as
//! actual SQL.
//!
//! The motivating scenario of the paper beyond subgraph counting: a user
//! poses a positive relational-algebra query (with joins) against a sensitive
//! database and wants a differentially private count of the result. One
//! participant can influence arbitrarily many output rows, so the classical
//! Laplace mechanism has unbounded sensitivity — the recursive mechanism
//! handles it.
//!
//! The query here, over tables `Visits(person, place)` and
//! `Residents(person, city)`:
//!
//! ```sql
//! SELECT COUNT(*)
//! FROM   Visits v1 JOIN Visits v2 ON v1.place = v2.place
//! JOIN   Residents r1 ON r1.person = v1.person
//! JOIN   Residents r2 ON r2.person = v2.person
//! WHERE  r1.city <> r2.city AND v1.person < v2.person
//! ```
//!
//! i.e. "how many pairs of people from different cities visited the same
//! place" — a self-join whose provenance expressions mention two
//! participants per output row, with one prolific traveller appearing in
//! many rows.
//!
//! The example runs the query twice: once through the `rmdp-sql` frontend
//! (the exact SQL string above) and once as the hand-built algebra plan the
//! frontend compiles to, asserting both agree before releasing the count.
//!
//! ```text
//! cargo run --release --example sql_unrestricted_join
//! ```

use recursive_mechanism_dp::core::params::MechanismParams;
use recursive_mechanism_dp::krelation::algebra::{natural_join, rename, select};
use recursive_mechanism_dp::krelation::annotate::AnnotatedDatabase;
use recursive_mechanism_dp::krelation::tuple::{Attr, Tuple, Value};
use recursive_mechanism_dp::krelation::{Expr, KRelation};
use recursive_mechanism_dp::sql::SqlSession;

/// The SQL text from the module doc comment, verbatim.
const SQL: &str = "\
SELECT COUNT(*)
FROM   Visits v1 JOIN Visits v2 ON v1.place = v2.place
JOIN   Residents r1 ON r1.person = v1.person
JOIN   Residents r2 ON r2.person = v2.person
WHERE  r1.city <> r2.city AND v1.person < v2.person";

fn main() {
    let mut db = AnnotatedDatabase::new();

    // Base data: (person, city) residences and (person, place) visits. Every
    // tuple is annotated with the participant variable of the person it
    // describes — the "safe annotation" of base tables.
    let residents_data = [
        ("ada", "rome"),
        ("bo", "rome"),
        ("cy", "oslo"),
        ("dee", "oslo"),
        ("eli", "lima"),
    ];
    let visits_data = [
        ("ada", "museum"),
        ("ada", "cafe"),
        ("ada", "park"),
        ("bo", "museum"),
        ("cy", "museum"),
        ("cy", "cafe"),
        ("dee", "park"),
        ("eli", "park"),
        ("eli", "cafe"),
    ];

    let mut residents = KRelation::new(["person", "city"]);
    for (person, city) in residents_data {
        let p = db.intern(person);
        residents.insert(
            Tuple::new([("person", Value::str(person)), ("city", Value::str(city))]),
            Expr::Var(p),
        );
    }
    let mut visits = KRelation::new(["person", "place"]);
    for (person, place) in visits_data {
        let p = db.intern(person);
        visits.insert(
            Tuple::new([("person", Value::str(person)), ("place", Value::str(place))]),
            Expr::Var(p),
        );
    }
    db.insert_table("residents", residents.clone());
    db.insert_table("visits", visits.clone());
    // The venues are public knowledge (a city guide, not the visit log), so
    // `place` can carry a declared domain for GROUP BY reports — including a
    // venue nobody visited.
    db.declare_public_domain(
        "visits",
        "place",
        ["museum", "cafe", "park", "stadium"].map(Value::str),
    );

    // The hand-built relational-algebra plan the frontend's compilation is
    // checked against. Renaming gives the two sides of the self-join distinct
    // attribute names; annotations are combined with ∧ at every join, so an
    // output row's provenance mentions both people.
    let v1 = rename(&visits, |a| match a.name() {
        "person" => Attr::new("p1"),
        other => Attr::new(other),
    });
    let v2 = rename(&visits, |a| match a.name() {
        "person" => Attr::new("p2"),
        other => Attr::new(other),
    });
    let same_place = select(&natural_join(&v1, &v2), |t| {
        t.get_named("p1").unwrap() < t.get_named("p2").unwrap()
    });
    let r1 = rename(&residents, |a| match a.name() {
        "person" => Attr::new("p1"),
        "city" => Attr::new("city1"),
        other => Attr::new(other),
    });
    let r2 = rename(&residents, |a| match a.name() {
        "person" => Attr::new("p2"),
        "city" => Attr::new("city2"),
        other => Attr::new(other),
    });
    let joined = natural_join(&natural_join(&same_place, &r1), &r2);
    let hand_built = select(&joined, |t| {
        t.get_named("city1").unwrap() != t.get_named("city2").unwrap()
    });

    // The SQL path. `plan` is the compiled algebra pipeline; `evaluate` runs
    // it without privacy so the output can be compared against the hand-built
    // plan; `query` performs the differentially private release through the
    // recursive mechanism's efficient (LP-based) instantiation.
    let params = MechanismParams::paper_edge_privacy(1.0);
    let mut session = SqlSession::with_seed(db, params, 7);

    println!("SQL:\n{SQL}\n");
    println!("plan:\n{}\n", session.plan(SQL).expect("query plans"));

    let sql_output = session.evaluate(SQL).expect("query evaluates");
    assert_eq!(
        sql_output.len(),
        hand_built.len(),
        "SQL frontend and hand-built algebra plan disagree"
    );
    println!("query output ({} rows):", sql_output.len());
    println!("{sql_output:?}");

    let release = session.query_scalar(SQL).expect("release");
    assert_eq!(release.true_answer, hand_built.len() as f64);
    println!("true count                 : {}", release.true_answer);
    println!("released (1-DP)            : {:.2}", release.noisy_answer);
    println!(
        "noise scale used (Δ̂/ε₂)    : {:.2}",
        release.delta_hat / session.params().epsilon2
    );

    // A grouped report over the declared public venue domain: one release
    // per venue (ε/k each under the default SplitEvenly policy), covering
    // every declared key — the unvisited stadium releases a noised zero.
    let grouped_sql = "SELECT place, COUNT(*) FROM visits GROUP BY place";
    let report = session.query_grouped(grouped_sql).expect("grouped release");
    println!(
        "\n{grouped_sql}\n  → {} groups at ε = {} each ({} total):",
        report.len(),
        report.per_group_epsilon,
        report.epsilon_spent
    );
    for group in &report.groups {
        println!(
            "  {:>10?}: true {} → released {:.2}",
            group.key, group.release.true_answer, group.release.noisy_answer
        );
    }
}
