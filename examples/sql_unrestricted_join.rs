//! Unrestricted joins over a multi-table sensitive database.
//!
//! The motivating scenario of the paper beyond subgraph counting: a user
//! poses a positive relational-algebra query (with joins) against a sensitive
//! database and wants a differentially private count of the result. One
//! participant can influence arbitrarily many output rows, so the classical
//! Laplace mechanism has unbounded sensitivity — the recursive mechanism
//! handles it.
//!
//! The query here, over tables `Visits(person, place)` and
//! `Residents(person, city)`:
//!
//! ```sql
//! SELECT COUNT(*)
//! FROM   Visits v1 JOIN Visits v2 ON v1.place = v2.place
//! JOIN   Residents r1 ON r1.person = v1.person
//! JOIN   Residents r2 ON r2.person = v2.person
//! WHERE  r1.city <> r2.city AND v1.person < v2.person
//! ```
//!
//! i.e. "how many pairs of people from different cities visited the same
//! place" — a self-join whose provenance expressions mention two
//! participants per output row, with one prolific traveller appearing in
//! many rows.
//!
//! ```text
//! cargo run --release --example sql_unrestricted_join
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use recursive_mechanism_dp::core::efficient::EfficientSequences;
use recursive_mechanism_dp::core::params::MechanismParams;
use recursive_mechanism_dp::core::{RecursiveMechanism, SensitiveKRelation};
use recursive_mechanism_dp::krelation::algebra::{natural_join, rename, select};
use recursive_mechanism_dp::krelation::annotate::AnnotatedDatabase;
use recursive_mechanism_dp::krelation::tuple::{Attr, Tuple, Value};
use recursive_mechanism_dp::krelation::{Expr, KRelation};

fn main() {
    let mut db = AnnotatedDatabase::new();

    // Base data: (person, city) residences and (person, place) visits. Every
    // tuple is annotated with the participant variable of the person it
    // describes — the "safe annotation" of base tables.
    let residents_data = [
        ("ada", "rome"),
        ("bo", "rome"),
        ("cy", "oslo"),
        ("dee", "oslo"),
        ("eli", "lima"),
    ];
    let visits_data = [
        ("ada", "museum"),
        ("ada", "cafe"),
        ("ada", "park"),
        ("bo", "museum"),
        ("cy", "museum"),
        ("cy", "cafe"),
        ("dee", "park"),
        ("eli", "park"),
        ("eli", "cafe"),
    ];

    let mut residents = KRelation::new(["person", "city"]);
    for (person, city) in residents_data {
        let p = db.universe_mut().intern(person);
        residents.insert(
            Tuple::new([("person", Value::str(person)), ("city", Value::str(city))]),
            Expr::Var(p),
        );
    }
    let mut visits = KRelation::new(["person", "place"]);
    for (person, place) in visits_data {
        let p = db.universe_mut().intern(person);
        visits.insert(
            Tuple::new([("person", Value::str(person)), ("place", Value::str(place))]),
            Expr::Var(p),
        );
    }
    db.insert_table("residents", residents.clone());
    db.insert_table("visits", visits.clone());

    // The relational-algebra plan. Renaming gives the two sides of the
    // self-join distinct attribute names; annotations are combined with ∧ at
    // every join, so an output row's provenance mentions both people.
    let v1 = rename(&visits, |a| match a.name() {
        "person" => Attr::new("p1"),
        other => Attr::new(other),
    });
    let v2 = rename(&visits, |a| match a.name() {
        "person" => Attr::new("p2"),
        other => Attr::new(other),
    });
    let same_place = select(&natural_join(&v1, &v2), |t| {
        t.get_named("p1").unwrap() < t.get_named("p2").unwrap()
    });
    let r1 = rename(&residents, |a| match a.name() {
        "person" => Attr::new("p1"),
        "city" => Attr::new("city1"),
        other => Attr::new(other),
    });
    let r2 = rename(&residents, |a| match a.name() {
        "person" => Attr::new("p2"),
        "city" => Attr::new("city2"),
        other => Attr::new(other),
    });
    let joined = natural_join(&natural_join(&same_place, &r1), &r2);
    let result = select(&joined, |t| {
        t.get_named("city1").unwrap() != t.get_named("city2").unwrap()
    });

    println!("query output ({} rows):", result.len());
    println!("{result:?}");

    // Wrap the output as a sensitive K-relation (count query, weight 1) and
    // release the count with the recursive mechanism.
    let participants = db.universe().ids().collect();
    let query = SensitiveKRelation::new(&result, participants, |_| 1.0);
    println!(
        "|P| = {}, |supp(R)| = {}, universal empirical sensitivity = {}",
        query.num_participants(),
        query.support_size(),
        query.universal_sensitivity()
    );

    let mut mechanism = RecursiveMechanism::new(
        EfficientSequences::new(query),
        MechanismParams::paper_edge_privacy(1.0),
    )
    .expect("valid parameters");

    let mut rng = StdRng::seed_from_u64(7);
    let release = mechanism.release(&mut rng).expect("release");
    println!("true count                 : {}", release.true_answer);
    println!("released (1-DP)            : {:.2}", release.noisy_answer);
    println!("noise scale used (Δ̂/ε₂)    : {:.2}", release.delta_hat / 0.5);
}
