//! A tour of K-relations and the relaxation φ, reproducing the paper's
//! Figure 2 and Figure 3 examples.
//!
//! * Fig. 2(a): the K-relations produced by triangle counting on a 6-node
//!   social network, under node and edge annotations.
//! * Fig. 2(b): "pairs of friends with a common friend" — a query whose
//!   annotations are *not* plain conjunctions.
//! * Fig. 3: φ-sensitivities of three example expressions.
//!
//! ```text
//! cargo run --example krelation_tour
//! ```

use recursive_mechanism_dp::core::subgraph::{PrivacyUnit, SubgraphCounter};
use recursive_mechanism_dp::core::MechanismParams;
use recursive_mechanism_dp::graph::{Graph, Pattern};
use recursive_mechanism_dp::krelation::participant::ParticipantId;
use recursive_mechanism_dp::krelation::phi::{phi, phi_sensitivities};
use recursive_mechanism_dp::krelation::Expr;

fn main() {
    // The paper's example graph: a–b–c–d–e connected as drawn in Fig. 2,
    // f isolated. Node ids: a=0, b=1, c=2, d=3, e=4, f=5.
    let names = ["a", "b", "c", "d", "e", "f"];
    let graph = Graph::from_edges(6, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (2, 4), (3, 4)]);

    println!("=== Fig. 2(a): how many triangles in a social network ===");
    for (privacy, label) in [(PrivacyUnit::Node, "node"), (PrivacyUnit::Edge, "edge")] {
        let counter = SubgraphCounter::new(
            Pattern::triangle(),
            privacy,
            MechanismParams::paper_node_privacy(0.5),
        );
        let query = counter.build_sensitive_relation(&graph);
        println!(
            "-- {label} differential privacy ({} tuples):",
            query.support_size()
        );
        for (idx, (expr, _)) in query.terms().iter().enumerate() {
            println!("   t{idx}: {expr}");
        }
        println!(
            "   universal empirical sensitivity ŨS = {}",
            query.universal_sensitivity()
        );
    }

    println!("\n=== Fig. 2(b): pairs of friends that have a common friend ===");
    // Occurrences of the 2-star pattern projected onto the two leaves: the
    // leaves are a friend pair iff they are adjacent; their annotation is the
    // disjunction over common friends — build it directly to show an OR-shaped
    // annotation.
    for u in 0..6u32 {
        for v in (u + 1)..6u32 {
            if !graph.has_edge(u, v) {
                continue;
            }
            let common = graph.common_neighbors(u, v);
            if common.is_empty() {
                continue;
            }
            let annotation = Expr::and(vec![
                Expr::var(ParticipantId(u)),
                Expr::var(ParticipantId(v)),
                Expr::or(common.iter().map(|&w| Expr::var(ParticipantId(w)))),
            ]);
            println!(
                "   {}{}: {}",
                names[u as usize], names[v as usize], annotation
            );
        }
    }

    println!("\n=== Fig. 3: φ-sensitivities ===");
    let a = ParticipantId(0);
    let b = ParticipantId(1);
    let c = ParticipantId(2);
    let d = ParticipantId(3);
    let examples = [
        Expr::conjunction_of_vars([a, b, c]),
        Expr::and(vec![
            Expr::or2(Expr::var(a), Expr::var(b)),
            Expr::or2(Expr::var(a), Expr::var(c)),
            Expr::or2(Expr::var(b), Expr::var(d)),
        ]),
        Expr::or(vec![
            Expr::and2(Expr::var(a), Expr::var(b)),
            Expr::and2(Expr::var(a), Expr::var(c)),
            Expr::and2(Expr::var(b), Expr::var(d)),
        ]),
    ];
    for k in &examples {
        let mut sens: Vec<(ParticipantId, f64)> = phi_sensitivities(k).into_iter().collect();
        sens.sort_by_key(|(p, _)| *p);
        let rendered: Vec<String> = sens
            .iter()
            .map(|(p, s)| format!("S_{{k,{p}}} = {s}"))
            .collect();
        println!("   k = {k}\n      {}", rendered.join(", "));
    }

    println!("\n=== The relaxation φ in action ===");
    let k = Expr::and2(
        Expr::or2(Expr::var(a), Expr::var(b)),
        Expr::or2(Expr::var(a), Expr::var(c)),
    );
    for f in [
        vec![1.0, 0.0, 0.0, 0.0],
        vec![0.5, 0.5, 0.5, 0.0],
        vec![0.0, 1.0, 1.0, 0.0],
    ] {
        println!("   φ_{{{k}}}({f:?}) = {}", phi(&k, &f));
    }
}
