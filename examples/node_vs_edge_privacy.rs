//! Node privacy vs edge privacy, and constrained subgraph queries.
//!
//! The same pattern can be counted under either privacy unit — node privacy
//! is stronger (a participant is a person plus all of their relationships)
//! but needs more noise. This example measures both on the same graph for
//! three patterns, and demonstrates a constrained query ("triangles that
//! touch the monitored group"), a feature the prior mechanisms do not
//! support.
//!
//! ```text
//! cargo run --release --example node_vs_edge_privacy
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use recursive_mechanism_dp::core::params::MechanismParams;
use recursive_mechanism_dp::core::subgraph::{PrivacyUnit, SubgraphCounter};
use recursive_mechanism_dp::graph::{generators, Pattern};
use recursive_mechanism_dp::noise::accuracy::{median, relative_error};

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let graph = generators::gnp_average_degree(60, 6.0, &mut rng);
    let epsilon = 0.5;
    let trials = 21;

    println!(
        "graph: {} nodes, {} edges; epsilon = {epsilon}, {trials} trials per setting\n",
        graph.num_nodes(),
        graph.num_edges()
    );
    println!(
        "{:<12} {:>10} {:>22} {:>22}",
        "pattern", "true", "median rel err (node)", "median rel err (edge)"
    );

    for pattern in [
        Pattern::triangle(),
        Pattern::k_star(2),
        Pattern::k_triangle(2),
    ] {
        let mut row = (0.0, 0.0, 0.0);
        for (privacy, slot) in [(PrivacyUnit::Node, 0usize), (PrivacyUnit::Edge, 1)] {
            let params = match privacy {
                PrivacyUnit::Node => MechanismParams::paper_node_privacy(epsilon),
                PrivacyUnit::Edge => MechanismParams::paper_edge_privacy(epsilon),
            };
            let counter = SubgraphCounter::new(pattern.clone(), privacy, params);
            let mut prepared = counter.prepare(&graph).expect("prepare");
            let answers = prepared.release_many(trials, &mut rng).expect("releases");
            let errors: Vec<f64> = answers
                .iter()
                .map(|a| relative_error(a.noisy_count, a.true_count))
                .collect();
            let med = median(&errors);
            row.0 = prepared.true_count;
            if slot == 0 {
                row.1 = med;
            } else {
                row.2 = med;
            }
        }
        println!(
            "{:<12} {:>10} {:>22.3} {:>22.3}",
            pattern.name(),
            row.0,
            row.1,
            row.2
        );
    }

    // Constrained counting: only triangles containing at least one node of a
    // monitored group. Constraints simply filter the matched occurrences; the
    // privacy analysis is unchanged.
    let monitored: Vec<u32> = (0..10).collect();
    let constrained = SubgraphCounter::new(
        Pattern::triangle(),
        PrivacyUnit::Node,
        MechanismParams::paper_node_privacy(epsilon),
    )
    .with_constraint(move |occ| occ.nodes.iter().any(|n| monitored.contains(n)));
    let answer = constrained.release(&graph, &mut rng).expect("release");
    println!(
        "\nconstrained query (triangles touching nodes 0..10): true {} / released {:.1}",
        answer.true_count, answer.noisy_count
    );
}
