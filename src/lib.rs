//! # recursive-mechanism-dp
//!
//! A reproduction of *"Recursive Mechanism: Towards Node Differential Privacy
//! and Unrestricted Joins"* (Chen & Zhou, SIGMOD 2013).
//!
//! This facade crate re-exports the workspace crates so downstream users can
//! depend on a single package:
//!
//! * [`krelation`] — positive Boolean provenance expressions, the relaxation
//!   `φ`, K-relations and positive relational algebra.
//! * [`lp`] — the bounded-variable simplex solver used by the efficient
//!   mechanism.
//! * [`graph`] — the graph substrate (generators, subgraph enumeration).
//! * [`noise`] — differential-privacy noise primitives.
//! * [`core`] — the recursive mechanism itself (general and efficient
//!   instantiations, subgraph-counting front-end).
//! * [`baselines`] — the competing mechanisms from the paper's evaluation.
//! * [`sql`] — a SQL frontend: a positive SQL subset (joins, including
//!   self-joins, with conjunctive predicates) compiled to the K-relation
//!   algebra and released through the recursive mechanism.
//! * [`runtime`] — the deterministic scoped worker pool and the admission
//!   gate (bounded in-flight + waiting-queue permits) the server fronts it
//!   with.
//! * [`observe`] — observability: deterministic clocks, stage recorders, the
//!   session metrics registry and the per-query `ReleaseTrace` returned by
//!   `SqlSession::query_traced` / SQL `EXPLAIN ANALYZE`.
//! * [`server`] — a multi-tenant DP query server: one shared immutable
//!   `CatalogSnapshot` and cross-tenant sequence cache, per-tenant ε
//!   budgets and replay logs, admission control in front of the worker
//!   pool, and a dependency-free line protocol over TCP.
//!
//! ## Quickstart
//!
//! ```
//! use recursive_mechanism_dp::core::subgraph::{SubgraphCounter, PrivacyUnit};
//! use recursive_mechanism_dp::core::params::MechanismParams;
//! use recursive_mechanism_dp::graph::{Graph, generators};
//! use recursive_mechanism_dp::graph::pattern::Pattern;
//! use rand::SeedableRng;
//! use rand::rngs::StdRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let graph = generators::gnp_average_degree(40, 6.0, &mut rng);
//! let params = MechanismParams::paper_edge_privacy(0.5);
//! let counter = SubgraphCounter::new(Pattern::triangle(), PrivacyUnit::Edge, params);
//! let answer = counter.release(&graph, &mut rng).unwrap();
//! assert!(answer.noisy_count.is_finite());
//! ```

//! ## SQL quickstart
//!
//! ```
//! use recursive_mechanism_dp::core::MechanismParams;
//! use recursive_mechanism_dp::krelation::annotate::AnnotatedDatabase;
//! use recursive_mechanism_dp::krelation::tuple::{Tuple, Value};
//! use recursive_mechanism_dp::krelation::{Expr, KRelation};
//! use recursive_mechanism_dp::sql::SqlSession;
//!
//! let mut db = AnnotatedDatabase::new();
//! let mut visits = KRelation::new(["person", "place"]);
//! for (person, place) in [("ada", "museum"), ("bo", "museum")] {
//!     let p = db.intern(person);
//!     visits.insert(
//!         Tuple::new([("person", Value::str(person)), ("place", Value::str(place))]),
//!         Expr::Var(p),
//!     );
//! }
//! db.insert_table("visits", visits);
//! db.declare_public_domain("visits", "place", [Value::str("museum"), Value::str("cafe")]);
//! let mut session = SqlSession::new(db, MechanismParams::paper_edge_privacy(1.0));
//! let release = session
//!     .query_scalar("SELECT COUNT(*) FROM visits v1 JOIN visits v2 ON v1.place = v2.place \
//!             WHERE v1.person < v2.person")
//!     .unwrap();
//! assert_eq!(release.true_answer, 1.0);
//!
//! // A GROUP BY report over the declared public domain: one release per key.
//! let report = session
//!     .query_grouped("SELECT place, COUNT(*) FROM visits GROUP BY place")
//!     .unwrap();
//! assert_eq!(report.len(), 2);
//! assert_eq!(report.get(&Value::str("museum")).unwrap().true_answer, 2.0);
//! ```

#![deny(missing_docs)]

pub use rmdp_baselines as baselines;
pub use rmdp_core as core;
pub use rmdp_graph as graph;
pub use rmdp_krelation as krelation;
pub use rmdp_lp as lp;
pub use rmdp_noise as noise;
pub use rmdp_observe as observe;
pub use rmdp_runtime as runtime;
pub use rmdp_server as server;
pub use rmdp_sql as sql;
