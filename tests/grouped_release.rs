//! End-to-end properties of grouped (`GROUP BY`) releases.
//!
//! A grouped report must be a pure *presentation* of k independent scalar
//! releases: bit-identical across `Parallelism` settings and cached/uncached
//! sessions, invariant under re-declaring the public key domain in another
//! order (the per-group noise seed binds to the key value, not its slot),
//! and atomically admitted against the budget — a refused report consumes
//! nothing. The previously rejected constructs (`ORDER BY`, `HAVING`,
//! `DISTINCT`, grouping on undeclared columns) must keep failing with
//! span-carrying errors.

use proptest::prelude::*;
use recursive_mechanism_dp::core::{MechanismParams, Parallelism, SequenceCache};
use recursive_mechanism_dp::krelation::annotate::AnnotatedDatabase;
use recursive_mechanism_dp::krelation::tuple::{Tuple, Value};
use recursive_mechanism_dp::krelation::{Expr, KRelation};
use recursive_mechanism_dp::noise::{GroupBudgetPolicy, PrivacyBudget};
use recursive_mechanism_dp::sql::{SqlError, SqlSession};
use std::sync::Arc;

const PLACES: [&str; 4] = ["museum", "cafe", "park", "stadium"];
const GROUPED_SQL: &str = "SELECT place, COUNT(*) FROM visits GROUP BY place";

/// Visits over four declared venues (one of which nobody visits), with the
/// domain declared in the order given by `domain_order` (indices into
/// [`PLACES`]).
fn visits_db(domain_order: &[usize]) -> AnnotatedDatabase {
    let mut db = AnnotatedDatabase::new();
    let mut visits = KRelation::new(["person", "place"]);
    for (person, place) in [
        ("ada", "museum"),
        ("bo", "museum"),
        ("bo", "cafe"),
        ("cy", "cafe"),
        ("dee", "museum"),
        ("eve", "park"),
    ] {
        let p = db.intern(person);
        visits.insert(
            Tuple::new([("person", Value::str(person)), ("place", Value::str(place))]),
            Expr::Var(p),
        );
    }
    db.insert_table("visits", visits);
    db.declare_public_domain(
        "visits",
        "place",
        domain_order.iter().map(|&i| Value::str(PLACES[i])),
    );
    db
}

#[test]
fn grouped_reports_are_bit_identical_across_parallelism_settings() {
    let params = MechanismParams::paper_edge_privacy(1.0);
    let baseline = SqlSession::with_seed(visits_db(&[0, 1, 2, 3]), params, 4242)
        .query_grouped(GROUPED_SQL)
        .unwrap();
    assert_eq!(baseline.len(), 4);
    for parallelism in [
        Parallelism::Threads(2),
        Parallelism::Threads(8),
        Parallelism::Auto,
    ] {
        let report = SqlSession::with_seed(
            visits_db(&[0, 1, 2, 3]),
            params.with_parallelism(parallelism),
            4242,
        )
        .query_grouped(GROUPED_SQL)
        .unwrap();
        for (a, b) in baseline.groups.iter().zip(&report.groups) {
            assert_eq!(a.key, b.key, "{parallelism}");
            assert_eq!(
                a.release.noisy_answer.to_bits(),
                b.release.noisy_answer.to_bits(),
                "{parallelism}: key {:?}",
                a.key
            );
            assert_eq!(a.release.delta_hat.to_bits(), b.release.delta_hat.to_bits());
            assert_eq!(a.release.x.to_bits(), b.release.x.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (a) Permuting the declared domain order permutes the report rows but
    /// leaves every key's released value bit-identical per seed.
    #[test]
    fn per_key_releases_are_invariant_under_domain_permutation(
        seed in any::<u64>(),
        order in Just(vec![0usize, 1, 2, 3]).prop_shuffle(),
    ) {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let canonical = SqlSession::with_seed(visits_db(&[0, 1, 2, 3]), params, seed)
            .query_grouped(GROUPED_SQL)
            .unwrap();
        let permuted = SqlSession::with_seed(visits_db(&order), params, seed)
            .query_grouped(GROUPED_SQL)
            .unwrap();
        // Rows follow the declared order…
        for (slot, &i) in order.iter().enumerate() {
            prop_assert_eq!(&permuted.groups[slot].key, &Value::str(PLACES[i]));
        }
        // …but each key's release is independent of where it was declared.
        for g in &canonical.groups {
            let other = permuted.get(&g.key).unwrap();
            prop_assert_eq!(
                g.release.noisy_answer.to_bits(),
                other.noisy_answer.to_bits(),
                "key {:?}", g.key
            );
            prop_assert_eq!(g.release.delta_hat.to_bits(), other.delta_hat.to_bits());
            prop_assert_eq!(g.release.true_answer.to_bits(), other.true_answer.to_bits());
        }
    }

    /// (b) A cached grouped session releases bit-identically to a cold one
    /// under the same seed — including repeats served entirely from cache.
    #[test]
    fn cold_and_cached_grouped_sessions_are_bit_identical(seed in any::<u64>()) {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let mut cold = SqlSession::with_seed(visits_db(&[0, 1, 2, 3]), params, seed);
        let cache = SequenceCache::shared(16);
        let mut cached = SqlSession::with_seed(visits_db(&[0, 1, 2, 3]), params, seed)
            .with_sequence_cache(Arc::clone(&cache));
        for round in 0..3 {
            let a = cold.query_grouped(GROUPED_SQL).unwrap();
            let b = cached.query_grouped(GROUPED_SQL).unwrap();
            for (ga, gb) in a.groups.iter().zip(&b.groups) {
                prop_assert_eq!(&ga.key, &gb.key);
                prop_assert_eq!(
                    ga.release.noisy_answer.to_bits(),
                    gb.release.noisy_answer.to_bits(),
                    "round {}, key {:?}", round, ga.key
                );
                prop_assert_eq!(ga.release.x.to_bits(), gb.release.x.to_bits());
            }
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.misses, 4, "one miss per declared key");
        prop_assert_eq!(stats.hits, 8, "two fully cached repeats");
    }

    /// (c) A grouped report refused for budget leaves `remaining_budget`
    /// untouched, whatever the policy; an affordable report then debits
    /// exactly its priced cost.
    #[test]
    fn refused_grouped_reports_consume_no_budget(
        epsilon in 0.3f64..1.5,
        use_per_group in any::<bool>(),
    ) {
        let params = MechanismParams::paper_edge_privacy(epsilon);
        let policy = if use_per_group {
            GroupBudgetPolicy::PerGroup
        } else {
            GroupBudgetPolicy::SplitEvenly
        };
        // Budget covers strictly less than one report (k = 4 under PerGroup,
        // one full ε under SplitEvenly).
        let total = match policy {
            GroupBudgetPolicy::PerGroup => 3.5 * epsilon,
            GroupBudgetPolicy::SplitEvenly => 0.9 * epsilon,
        };
        let mut session = SqlSession::new(visits_db(&[0, 1, 2, 3]), params)
            .with_group_policy(policy)
            .with_budget(PrivacyBudget::pure(total));
        let err = session.query_grouped(GROUPED_SQL).unwrap_err();
        prop_assert!(matches!(err, SqlError::BudgetExhausted(_)), "{err:?}");
        prop_assert_eq!(session.remaining_budget().unwrap().epsilon, total);

        match policy {
            // Under PerGroup a single scalar release (ε ≤ 3.5ε) still fits
            // and debits exactly ε.
            GroupBudgetPolicy::PerGroup => {
                session.query_scalar("SELECT COUNT(*) FROM visits").unwrap();
                let left = session.remaining_budget().unwrap().epsilon;
                prop_assert!((left - (total - epsilon)).abs() < 1e-9);
            }
            // Under SplitEvenly the report is priced exactly like a scalar
            // release, so the scalar is refused too — and still consumes
            // nothing.
            GroupBudgetPolicy::SplitEvenly => {
                let err = session
                    .query_scalar("SELECT COUNT(*) FROM visits")
                    .unwrap_err();
                prop_assert!(matches!(err, SqlError::BudgetExhausted(_)));
                prop_assert_eq!(session.remaining_budget().unwrap().epsilon, total);
            }
        }
    }
}

#[test]
fn grouped_and_scalar_sessions_share_one_cache() {
    // The group key dissolves into an equality conjunct, so a grouped
    // report and the hand-written per-key queries are the *same* cache
    // entries — whichever side runs first warms the other.
    let params = MechanismParams::paper_edge_privacy(1.0);
    let cache = SequenceCache::shared(16);
    let mut grouped = SqlSession::with_seed(visits_db(&[0, 1, 2, 3]), params, 1)
        .with_sequence_cache(Arc::clone(&cache));
    grouped.query_grouped(GROUPED_SQL).unwrap();
    assert_eq!(cache.stats().misses, 4);

    let scalar_queries: Vec<String> = PLACES
        .iter()
        .map(|p| format!("SELECT COUNT(*) FROM visits v WHERE v.place = '{p}'"))
        .collect();
    let mut scalar = SqlSession::with_seed(visits_db(&[0, 1, 2, 3]), params, 2)
        .with_sequence_cache(Arc::clone(&cache));
    // Different session, different alias spelling, same database *value* —
    // but a different instance, so nothing is shared...
    scalar.query_batch(&scalar_queries).unwrap();
    assert_eq!(cache.stats().misses, 8, "distinct db instances never share");

    // ...while within one session the scalar queries hit the grouped
    // report's entries exactly.
    let before = cache.stats().misses;
    grouped.query_batch(&scalar_queries).unwrap();
    assert_eq!(cache.stats().misses, before);
    assert!(cache.stats().hits >= 4);
}

#[test]
fn rejected_constructs_still_fail_with_spans() {
    let mut session = SqlSession::new(
        visits_db(&[0, 1, 2, 3]),
        MechanismParams::paper_edge_privacy(1.0),
    );
    for (sql, needle) in [
        ("SELECT COUNT(*) FROM visits ORDER BY place", "ORDER"),
        (
            "SELECT place, COUNT(*) FROM visits GROUP BY place HAVING COUNT(*) > 1",
            "HAVING",
        ),
        ("SELECT DISTINCT COUNT(*) FROM visits", "DISTINCT"),
        ("SELECT COUNT(*) FROM visits GROUP BY place, person", ","),
    ] {
        match session.query(sql).unwrap_err() {
            SqlError::Unsupported { span, .. } => assert_eq!(span.slice(sql), needle, "{sql}"),
            other => panic!("expected Unsupported for {sql:?}, got {other:?}"),
        }
    }
    // Grouping on a column without a declared domain is a planner error
    // pointing at the key.
    let sql = "SELECT person, COUNT(*) FROM visits GROUP BY person";
    match session.query(sql).unwrap_err() {
        SqlError::UndeclaredGroupDomain { span, table, .. } => {
            assert_eq!(span.slice(sql), "person");
            assert_eq!(table, "visits");
        }
        other => panic!("expected UndeclaredGroupDomain, got {other:?}"),
    }
}
