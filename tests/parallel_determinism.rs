//! Serial/parallel equivalence and budget accounting, end to end.
//!
//! The `Parallelism` knob must be a pure wall-clock knob: the parallel
//! precompute has to produce bit-identical `H`/`G` vectors — and, given a
//! fixed seed, bit-identical `Release`s — to the lazy serial path. And the
//! `SqlSession` budget accountant has to refuse over-budget batches
//! atomically, consuming nothing.

use rand::rngs::StdRng;
use rand::SeedableRng;
use recursive_mechanism_dp::core::efficient::EfficientSequences;
use recursive_mechanism_dp::core::general::GeneralSequences;
use recursive_mechanism_dp::core::params::MechanismParams;
use recursive_mechanism_dp::core::sequences::MechanismSequences;
use recursive_mechanism_dp::core::subgraph::{PrivacyUnit, SubgraphCounter};
use recursive_mechanism_dp::core::{Parallelism, RecursiveMechanism, SensitiveKRelation};
use recursive_mechanism_dp::graph::{generators, Pattern};
use recursive_mechanism_dp::krelation::annotate::AnnotatedDatabase;
use recursive_mechanism_dp::krelation::tuple::{Tuple, Value};
use recursive_mechanism_dp::krelation::{Expr, KRelation};
use recursive_mechanism_dp::noise::PrivacyBudget;
use recursive_mechanism_dp::sql::{SqlError, SqlSession};

/// The fig-4 workload at small scale: triangles under node privacy on a
/// G(n, p) random graph.
fn fig4_relation() -> SensitiveKRelation {
    let mut rng = StdRng::seed_from_u64(77);
    let graph = generators::gnp_average_degree(40, 8.0, &mut rng);
    SubgraphCounter::new(
        Pattern::triangle(),
        PrivacyUnit::Node,
        MechanismParams::paper_node_privacy(0.5),
    )
    .build_sensitive_relation(&graph)
}

#[test]
fn serial_and_parallel_efficient_sequences_are_bit_identical() {
    let relation = fig4_relation();
    let n = relation.num_participants();

    let mut serial = EfficientSequences::new(relation.clone());
    let mut parallel = EfficientSequences::new(relation);
    parallel.precompute(Parallelism::Threads(4)).unwrap();

    let serial_h: Vec<f64> = (0..=n).map(|i| serial.h(i).unwrap()).collect();
    let serial_g: Vec<f64> = (0..=n).map(|i| serial.g(i).unwrap()).collect();
    let parallel_h: Vec<f64> = (0..=n).map(|i| parallel.h(i).unwrap()).collect();
    let parallel_g: Vec<f64> = (0..=n).map(|i| parallel.g(i).unwrap()).collect();

    // Bitwise equality — not within-tolerance — because both paths must run
    // the exact same deterministic LP solves.
    assert_eq!(serial_h, parallel_h);
    assert_eq!(serial_g, parallel_g);
    assert_eq!(serial.stats().h_solves, n + 1);
    assert_eq!(parallel.stats().h_solves, n + 1);
    assert_eq!(
        serial.stats().total_pivots,
        parallel.stats().total_pivots,
        "same LPs, same pivots"
    );
}

#[test]
fn serial_and_parallel_mechanisms_release_identically_under_a_fixed_seed() {
    let serial_params = MechanismParams::paper_node_privacy(1.0);
    let parallel_params = serial_params.with_parallelism(Parallelism::Threads(4));

    let mut serial_mech =
        RecursiveMechanism::new(EfficientSequences::new(fig4_relation()), serial_params).unwrap();
    let mut parallel_mech =
        RecursiveMechanism::new(EfficientSequences::new(fig4_relation()), parallel_params).unwrap();

    let serial_releases = serial_mech
        .release_many(8, &mut StdRng::seed_from_u64(123))
        .unwrap();
    let parallel_releases = parallel_mech
        .release_many(8, &mut StdRng::seed_from_u64(123))
        .unwrap();

    for (a, b) in serial_releases.iter().zip(&parallel_releases) {
        assert_eq!(a.noisy_answer, b.noisy_answer);
        assert_eq!(a.delta, b.delta);
        assert_eq!(a.delta_hat, b.delta_hat);
        assert_eq!(a.x, b.x);
        assert_eq!(a.argmin_index, b.argmin_index);
        assert_eq!(a.true_answer, b.true_answer);
    }
}

#[test]
fn general_sequences_parallel_build_matches_serial() {
    let relation = fig4_relation();
    // Shrink to the general instantiation's exhaustive range by restricting
    // to a 12-participant sub-universe.
    let keep = 12u32;
    let terms: Vec<(Expr, f64)> = relation
        .terms()
        .iter()
        .filter(|(e, _)| {
            (keep..relation.num_participants() as u32).all(|p| {
                e.restrict(recursive_mechanism_dp::krelation::ParticipantId(p), false) == *e
            })
        })
        .cloned()
        .collect();
    let small = SensitiveKRelation::from_terms(
        (0..keep)
            .map(recursive_mechanism_dp::krelation::ParticipantId)
            .collect(),
        terms,
    );
    let serial = GeneralSequences::build(&small).unwrap();
    let parallel = GeneralSequences::build_with(&small, Parallelism::Threads(4)).unwrap();
    assert_eq!(serial.h_entries(), parallel.h_entries());
    assert_eq!(serial.g_entries(), parallel.g_entries());
}

fn visits_db() -> AnnotatedDatabase {
    let mut db = AnnotatedDatabase::new();
    let mut visits = KRelation::new(["person", "place"]);
    for (person, place) in [
        ("ada", "museum"),
        ("bo", "museum"),
        ("bo", "cafe"),
        ("cy", "cafe"),
        ("dee", "museum"),
    ] {
        let p = db.universe_mut().intern(person);
        visits.insert(
            Tuple::new([("person", Value::str(person)), ("place", Value::str(place))]),
            Expr::Var(p),
        );
    }
    db.insert_table("visits", visits);
    db
}

const BATCH: [&str; 3] = [
    "SELECT COUNT(*) FROM visits WHERE place = 'museum'",
    "SELECT COUNT(*) FROM visits",
    "SELECT COUNT(*) FROM visits v1 JOIN visits v2 ON v1.place = v2.place WHERE v1.person < v2.person",
];

#[test]
fn sql_batch_is_bit_identical_across_parallelism_settings() {
    let params = MechanismParams::paper_edge_privacy(1.0);
    let serial = SqlSession::with_seed(visits_db(), params, 99)
        .query_batch(&BATCH)
        .unwrap();
    for parallelism in [
        Parallelism::Threads(2),
        Parallelism::Threads(8),
        Parallelism::Auto,
    ] {
        let parallel = SqlSession::with_seed(visits_db(), params.with_parallelism(parallelism), 99)
            .query_batch(&BATCH)
            .unwrap();
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.noisy_answer, b.noisy_answer);
            assert_eq!(a.true_answer, b.true_answer);
            assert_eq!(a.delta_hat, b.delta_hat);
        }
    }
    assert_eq!(serial[0].true_answer, 3.0);
    assert_eq!(serial[1].true_answer, 5.0);
}

#[test]
fn over_budget_batch_is_rejected_without_consuming_epsilon() {
    let params = MechanismParams::paper_edge_privacy(0.5); // 0.5ε per release
    let mut session =
        SqlSession::with_seed(visits_db(), params, 5).with_budget(PrivacyBudget::pure(1.0));

    // Three releases need 1.5ε against a 1.0ε budget: refused atomically.
    let err = session.query_batch(&BATCH).unwrap_err();
    match err {
        SqlError::BudgetExhausted(e) => {
            assert!((e.requested.epsilon - 1.5).abs() < 1e-12);
            assert!((e.remaining.epsilon - 1.0).abs() < 1e-12);
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    assert_eq!(
        session.remaining_budget().unwrap().epsilon,
        1.0,
        "a refused batch must consume nothing"
    );

    // Two of the three fit exactly and drain the budget to zero.
    let releases = session.query_batch(&BATCH[..2]).unwrap();
    assert_eq!(releases.len(), 2);
    assert!(session.remaining_budget().unwrap().epsilon.abs() < 1e-9);

    // Everything afterwards — batch or single — is refused.
    assert!(matches!(
        session.query_batch(&BATCH[..1]).unwrap_err(),
        SqlError::BudgetExhausted(_)
    ));
    assert!(matches!(
        session.query("SELECT COUNT(*) FROM visits").unwrap_err(),
        SqlError::BudgetExhausted(_)
    ));
}
