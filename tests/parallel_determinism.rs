//! Serial/parallel equivalence, budget accounting and cross-query caching,
//! end to end.
//!
//! The `Parallelism` knob must be a pure wall-clock knob: the parallel
//! precompute has to produce bit-identical `H`/`G` vectors — and, given a
//! fixed seed, bit-identical `Release`s — to the lazy serial path. The
//! `SqlSession` budget accountant has to refuse over-budget batches
//! atomically, consuming nothing. And the sequence cache has to be equally
//! invisible: structurally identical queries (any alias names, join order,
//! conjunct order) must collide on one fingerprint, structurally different
//! ones must not, and a cached session must release bit-identically to an
//! uncached one under the same seed.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use recursive_mechanism_dp::core::efficient::EfficientSequences;
use recursive_mechanism_dp::core::general::GeneralSequences;
use recursive_mechanism_dp::core::params::MechanismParams;
use recursive_mechanism_dp::core::sequences::MechanismSequences;
use recursive_mechanism_dp::core::subgraph::{PrivacyUnit, SubgraphCounter};
use recursive_mechanism_dp::core::{Parallelism, RecursiveMechanism, SensitiveKRelation};
use recursive_mechanism_dp::graph::{generators, Pattern};
use recursive_mechanism_dp::krelation::annotate::AnnotatedDatabase;
use recursive_mechanism_dp::krelation::tuple::{Tuple, Value};
use recursive_mechanism_dp::krelation::{Expr, KRelation};
use recursive_mechanism_dp::noise::PrivacyBudget;
use recursive_mechanism_dp::sql::{SqlError, SqlSession};

/// The fig-4 workload at small scale: triangles under node privacy on a
/// G(n, p) random graph.
fn fig4_relation() -> SensitiveKRelation {
    let mut rng = StdRng::seed_from_u64(77);
    let graph = generators::gnp_average_degree(40, 8.0, &mut rng);
    SubgraphCounter::new(
        Pattern::triangle(),
        PrivacyUnit::Node,
        MechanismParams::paper_node_privacy(0.5),
    )
    .build_sensitive_relation(&graph)
}

#[test]
fn serial_and_parallel_efficient_sequences_are_bit_identical() {
    let relation = fig4_relation();
    let n = relation.num_participants();

    let mut serial = EfficientSequences::new(relation.clone());
    let mut parallel = EfficientSequences::new(relation);
    parallel.precompute(Parallelism::Threads(4)).unwrap();

    let serial_h: Vec<f64> = (0..=n).map(|i| serial.h(i).unwrap()).collect();
    let serial_g: Vec<f64> = (0..=n).map(|i| serial.g(i).unwrap()).collect();
    let parallel_h: Vec<f64> = (0..=n).map(|i| parallel.h(i).unwrap()).collect();
    let parallel_g: Vec<f64> = (0..=n).map(|i| parallel.g(i).unwrap()).collect();

    // Bitwise equality — not within-tolerance — because both paths must run
    // the exact same deterministic LP solves.
    assert_eq!(serial_h, parallel_h);
    assert_eq!(serial_g, parallel_g);
    assert_eq!(serial.stats().h_solves, n + 1);
    assert_eq!(parallel.stats().h_solves, n + 1);
    assert_eq!(
        serial.stats().total_pivots,
        parallel.stats().total_pivots,
        "same LPs, same pivots"
    );
}

#[test]
fn serial_and_parallel_mechanisms_release_identically_under_a_fixed_seed() {
    let serial_params = MechanismParams::paper_node_privacy(1.0);
    let parallel_params = serial_params.with_parallelism(Parallelism::Threads(4));

    let mut serial_mech =
        RecursiveMechanism::new(EfficientSequences::new(fig4_relation()), serial_params).unwrap();
    let mut parallel_mech =
        RecursiveMechanism::new(EfficientSequences::new(fig4_relation()), parallel_params).unwrap();

    let serial_releases = serial_mech
        .release_many(8, &mut StdRng::seed_from_u64(123))
        .unwrap();
    let parallel_releases = parallel_mech
        .release_many(8, &mut StdRng::seed_from_u64(123))
        .unwrap();

    for (a, b) in serial_releases.iter().zip(&parallel_releases) {
        assert_eq!(a.noisy_answer, b.noisy_answer);
        assert_eq!(a.delta, b.delta);
        assert_eq!(a.delta_hat, b.delta_hat);
        assert_eq!(a.x, b.x);
        assert_eq!(a.argmin_index, b.argmin_index);
        assert_eq!(a.true_answer, b.true_answer);
    }
}

#[test]
fn general_sequences_parallel_build_matches_serial() {
    let relation = fig4_relation();
    // Shrink to the general instantiation's exhaustive range by restricting
    // to a 12-participant sub-universe.
    let keep = 12u32;
    let terms: Vec<(Expr, f64)> = relation
        .terms()
        .iter()
        .filter(|(e, _)| {
            (keep..relation.num_participants() as u32).all(|p| {
                e.restrict(recursive_mechanism_dp::krelation::ParticipantId(p), false) == *e
            })
        })
        .cloned()
        .collect();
    let small = SensitiveKRelation::from_terms(
        (0..keep)
            .map(recursive_mechanism_dp::krelation::ParticipantId)
            .collect(),
        terms,
    );
    let serial = GeneralSequences::build(&small).unwrap();
    let parallel = GeneralSequences::build_with(&small, Parallelism::Threads(4)).unwrap();
    assert_eq!(serial.h_entries(), parallel.h_entries());
    assert_eq!(serial.g_entries(), parallel.g_entries());
}

fn visits_db() -> AnnotatedDatabase {
    let mut db = AnnotatedDatabase::new();
    let mut visits = KRelation::new(["person", "place"]);
    for (person, place) in [
        ("ada", "museum"),
        ("bo", "museum"),
        ("bo", "cafe"),
        ("cy", "cafe"),
        ("dee", "museum"),
    ] {
        let p = db.intern(person);
        visits.insert(
            Tuple::new([("person", Value::str(person)), ("place", Value::str(place))]),
            Expr::Var(p),
        );
    }
    db.insert_table("visits", visits);
    db
}

const BATCH: [&str; 3] = [
    "SELECT COUNT(*) FROM visits WHERE place = 'museum'",
    "SELECT COUNT(*) FROM visits",
    "SELECT COUNT(*) FROM visits v1 JOIN visits v2 ON v1.place = v2.place WHERE v1.person < v2.person",
];

#[test]
fn sql_batch_is_bit_identical_across_parallelism_settings() {
    let params = MechanismParams::paper_edge_privacy(1.0);
    let serial = SqlSession::with_seed(visits_db(), params, 99)
        .query_batch(&BATCH)
        .unwrap();
    for parallelism in [
        Parallelism::Threads(2),
        Parallelism::Threads(8),
        Parallelism::Auto,
    ] {
        let parallel = SqlSession::with_seed(visits_db(), params.with_parallelism(parallelism), 99)
            .query_batch(&BATCH)
            .unwrap();
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.noisy_answer, b.noisy_answer);
            assert_eq!(a.true_answer, b.true_answer);
            assert_eq!(a.delta_hat, b.delta_hat);
        }
    }
    assert_eq!(serial[0].true_answer, 3.0);
    assert_eq!(serial[1].true_answer, 5.0);
}

#[test]
fn over_budget_batch_is_rejected_without_consuming_epsilon() {
    let params = MechanismParams::paper_edge_privacy(0.5); // 0.5ε per release
    let mut session =
        SqlSession::with_seed(visits_db(), params, 5).with_budget(PrivacyBudget::pure(1.0));

    // Three releases need 1.5ε against a 1.0ε budget: refused atomically.
    let err = session.query_batch(&BATCH).unwrap_err();
    match err {
        SqlError::BudgetExhausted(e) => {
            assert!((e.requested.epsilon - 1.5).abs() < 1e-12);
            assert!((e.remaining.epsilon - 1.0).abs() < 1e-12);
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    assert_eq!(
        session.remaining_budget().unwrap().epsilon,
        1.0,
        "a refused batch must consume nothing"
    );

    // Two of the three fit exactly and drain the budget to zero.
    let releases = session.query_batch(&BATCH[..2]).unwrap();
    assert_eq!(releases.len(), 2);
    assert!(session.remaining_budget().unwrap().epsilon.abs() < 1e-9);

    // Everything afterwards — batch or single — is refused.
    assert!(matches!(
        session.query_batch(&BATCH[..1]).unwrap_err(),
        SqlError::BudgetExhausted(_)
    ));
    assert!(matches!(
        session
            .query_scalar("SELECT COUNT(*) FROM visits")
            .unwrap_err(),
        SqlError::BudgetExhausted(_)
    ));
}

// ---------------------------------------------------------------------------
// Cross-query sequence cache: fingerprint invariance and release bit-identity.
// ---------------------------------------------------------------------------

use recursive_mechanism_dp::sql::fingerprint::plan_fingerprint;
use recursive_mechanism_dp::sql::plan as sql_plan;
use std::sync::Arc;

/// One abstract query shape over `visits`: a star self-join of `1 + joins`
/// aliases on `person`, per-alias `place` filters, and an optional ordering
/// conjunct between two roles. The *surface form* (alias names, join order,
/// conjunct order, operand order) is chosen separately, so one shape can be
/// rendered many ways.
#[derive(Clone, Debug)]
struct QueryShape {
    /// Number of JOINed aliases (role 0 is the FROM table).
    joins: usize,
    /// `place = <literal>` filter per role (`None` = no filter for that role).
    place_filter: Vec<Option<&'static str>>,
    /// Optional `role_a.person < role_b.person` conjunct.
    ordering: Option<(usize, usize)>,
}

/// How one rendering permutes and renames the shape.
#[derive(Clone, Debug)]
struct Rendering {
    /// Order in which roles 1.. are JOINed (a permutation of 1..=joins).
    join_order: Vec<usize>,
    /// Order of the WHERE conjuncts (a permutation).
    conjunct_order: Vec<usize>,
    /// Alias naming scheme: role i is named `format!("{prefix}{suffix[i]}")`.
    prefix: &'static str,
    suffixes: Vec<usize>,
    /// Whether to flip `x = y` equalities to `y = x` and `a < b` to `b > a`.
    flip_operands: bool,
}

fn render(shape: &QueryShape, r: &Rendering) -> String {
    let alias = |role: usize| format!("{}{}", r.prefix, r.suffixes[role]);
    let mut sql = format!("SELECT COUNT(*) FROM visits {}", alias(0));
    for &role in &r.join_order {
        let (a, b) = (alias(role), alias(0));
        let on = if r.flip_operands {
            format!("{b}.person = {a}.person")
        } else {
            format!("{a}.person = {b}.person")
        };
        sql.push_str(&format!(" JOIN visits {} ON {on}", alias(role)));
    }
    let mut conjuncts: Vec<String> = Vec::new();
    for (role, filter) in shape.place_filter.iter().enumerate() {
        if let Some(place) = filter {
            conjuncts.push(format!("{}.place = '{place}'", alias(role)));
        }
    }
    if let Some((lo, hi)) = shape.ordering {
        conjuncts.push(if r.flip_operands {
            format!("{}.person > {}.person", alias(hi), alias(lo))
        } else {
            format!("{}.person < {}.person", alias(lo), alias(hi))
        });
    }
    let ordered: Vec<String> = r
        .conjunct_order
        .iter()
        .filter(|&&i| i < conjuncts.len())
        .map(|&i| conjuncts[i].clone())
        .collect();
    if !ordered.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&ordered.join(" AND "));
    }
    sql
}

fn arb_shape() -> impl Strategy<Value = QueryShape> {
    (1usize..=3)
        .prop_flat_map(|joins| {
            let filters = proptest::collection::vec(
                prop_oneof![
                    Just(None),
                    Just(Some("museum")),
                    Just(Some("cafe")),
                    Just(Some("park")),
                ],
                joins + 1,
            );
            let ordering = prop_oneof![
                Just(None),
                (0..=joins, 0..=joins)
                    .prop_filter("distinct roles", |(a, b)| a != b)
                    .prop_map(Some),
            ];
            (Just(joins), filters, ordering)
        })
        .prop_map(|(joins, place_filter, ordering)| QueryShape {
            joins,
            place_filter,
            ordering,
        })
}

fn arb_rendering(joins: usize) -> impl Strategy<Value = Rendering> {
    let max_conjuncts = joins + 2; // every role filtered + the ordering
    (
        Just((1..=joins).collect::<Vec<usize>>()).prop_shuffle(),
        Just((0..max_conjuncts).collect::<Vec<usize>>()).prop_shuffle(),
        prop_oneof![Just("t"), Just("q"), Just("alias")],
        Just((0..=joins).collect::<Vec<usize>>()).prop_shuffle(),
        any::<bool>(),
    )
        .prop_map(
            |(join_order, conjunct_order, prefix, suffixes, flip_operands)| Rendering {
                join_order,
                conjunct_order,
                prefix,
                suffixes,
                flip_operands,
            },
        )
}

fn fingerprint_of(db: &AnnotatedDatabase, sql: &str) -> rmdp_fp::Fingerprint {
    let params = MechanismParams::paper_edge_privacy(1.0);
    let plan = sql_plan(db, sql)
        .unwrap_or_else(|e| panic!("{sql}: {e}"))
        .expect_scalar();
    plan_fingerprint(db, &plan, &params)
}

use recursive_mechanism_dp::krelation::fingerprint as rmdp_fp;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any two renderings of the same shape — permuted join order, permuted
    /// conjunct order, different alias names, flipped symmetric operands —
    /// must collide on one fingerprint.
    #[test]
    fn fingerprints_are_invariant_under_query_rewrites(
        shape in arb_shape(),
        renderings in (1usize..=3).prop_flat_map(|j| (arb_rendering(j), arb_rendering(j))),
    ) {
        // Tie the independently drawn renderings to the shape's join count.
        let shape = QueryShape { joins: renderings.0.join_order.len(), ..shape.clone() };
        let mut filters = shape.place_filter.clone();
        filters.resize(shape.joins + 1, None);
        let ordering = shape.ordering.filter(|(a, b)| *a <= shape.joins && *b <= shape.joins);
        let shape = QueryShape { place_filter: filters, ordering, ..shape };

        let db = visits_db();
        let a = render(&shape, &renderings.0);
        let b = render(&shape, &renderings.1);
        prop_assert_eq!(
            fingerprint_of(&db, &a),
            fingerprint_of(&db, &b),
            "renderings of one shape diverged:\n  {}\n  {}",
            a,
            b
        );
    }

    /// Structurally different shapes (different join arity, or a literal the
    /// other shape never mentions) must never collide.
    #[test]
    fn structurally_different_queries_never_collide(
        shape in arb_shape(),
        rendering in (1usize..=3).prop_flat_map(arb_rendering),
    ) {
        let joins = rendering.join_order.len();
        let mut filters = shape.place_filter.clone();
        filters.resize(joins + 1, None);
        let ordering = shape.ordering.filter(|(a, b)| *a <= joins && *b <= joins);
        let shape = QueryShape { joins, place_filter: filters, ordering };

        let db = visits_db();
        let base = fingerprint_of(&db, &render(&shape, &rendering));

        // A literal no shape in this universe uses: guaranteed non-isomorphic.
        let mut fresh_literal = shape.clone();
        fresh_literal.place_filter[0] = Some("zoo");
        let identity = Rendering {
            join_order: (1..=shape.joins).collect(),
            conjunct_order: (0..shape.joins + 2).collect(),
            prefix: "t",
            suffixes: (0..=shape.joins).collect(),
            flip_operands: false,
        };
        prop_assert_ne!(base, fingerprint_of(&db, &render(&fresh_literal, &identity)));

        // One more join than the base shape: different scan multiset.
        let mut wider = shape.clone();
        wider.joins += 1;
        wider.place_filter.push(None);
        let wider_identity = Rendering {
            join_order: (1..=wider.joins).collect(),
            conjunct_order: (0..wider.joins + 2).collect(),
            prefix: "t",
            suffixes: (0..=wider.joins).collect(),
            flip_operands: false,
        };
        prop_assert_ne!(base, fingerprint_of(&db, &render(&wider, &wider_identity)));
    }

    /// A cached session must release bit-identically to an uncached one
    /// under the same seed — repeats served from the cache included.
    #[test]
    fn cached_and_cold_sessions_release_bit_identically(seed in any::<u64>()) {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let queries = [BATCH[0], BATCH[2], BATCH[0], BATCH[2], BATCH[1], BATCH[0]];
        let mut cold = SqlSession::with_seed(visits_db(), params, seed);
        let cache = recursive_mechanism_dp::core::SequenceCache::shared(16);
        let mut cached = SqlSession::with_seed(visits_db(), params, seed)
            .with_sequence_cache(Arc::clone(&cache));
        for sql in queries {
            let a = cold.query_scalar(sql).unwrap();
            let b = cached.query_scalar(sql).unwrap();
            prop_assert_eq!(a.noisy_answer.to_bits(), b.noisy_answer.to_bits(), "{}", sql);
            prop_assert_eq!(a.delta_hat.to_bits(), b.delta_hat.to_bits(), "{}", sql);
            prop_assert_eq!(a.x.to_bits(), b.x.to_bits(), "{}", sql);
            prop_assert_eq!(a.argmin_index, b.argmin_index, "{}", sql);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.misses, 3, "three distinct shapes");
        prop_assert_eq!(stats.hits, 3, "three repeats");
    }
}

/// The permuted self-join renderings of the paper's running example must hit
/// one cache entry end to end (not just fingerprint-equal): queries are
/// answered from each other's sequences with bit-identical `X`.
#[test]
fn permuted_self_join_renderings_share_one_cache_entry() {
    let params = MechanismParams::paper_edge_privacy(1.0);
    let cache = recursive_mechanism_dp::core::SequenceCache::shared(8);
    let mut session =
        SqlSession::with_seed(visits_db(), params, 42).with_sequence_cache(Arc::clone(&cache));
    let renderings = [
        "SELECT COUNT(*) FROM visits v1 JOIN visits v2 ON v1.place = v2.place \
         WHERE v1.person < v2.person",
        "SELECT COUNT(*) FROM visits a JOIN visits b ON b.place = a.place \
         WHERE a.person < b.person",
        "SELECT COUNT(*) FROM visits y JOIN visits x ON x.place = y.place \
         WHERE y.person < x.person",
    ];
    let releases: Vec<_> = renderings
        .iter()
        .map(|sql| session.query_scalar(sql).unwrap())
        .collect();
    assert_eq!(cache.len(), 1, "all renderings share one entry");
    assert_eq!(cache.stats().misses, 1);
    assert_eq!(cache.stats().hits, 2);
    for r in &releases {
        assert_eq!(r.true_answer, releases[0].true_answer);
        assert_eq!(r.delta, releases[0].delta, "same cached sequences");
    }
}
