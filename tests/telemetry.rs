//! End-to-end telemetry tests: the observability hard invariant.
//!
//! * **Bit-identity**: a traced release (`query_traced` / `EXPLAIN
//!   ANALYZE`, with a metrics registry and a sequence cache attached) must
//!   be bit-identical to the plain `query` release under the same seed,
//!   for every `Parallelism` — telemetry may never perturb a release.
//! * **Trace consistency** (property-based): stage durations sum to at
//!   most the total, cache outcomes cohere with the session configuration,
//!   and the ε a trace records equals the ε the accountant debited.
//! * **Deterministic stat folding**: session LP totals fold by input
//!   index, so identical sessions agree exactly, whatever the schedule.
//! * **Monotone counters**: registry counters never decrease, and the
//!   snapshot JSON round-trips.

use proptest::prelude::*;
use recursive_mechanism_dp::core::{MechanismParams, Parallelism};
use recursive_mechanism_dp::krelation::annotate::AnnotatedDatabase;
use recursive_mechanism_dp::krelation::tuple::{Tuple, Value};
use recursive_mechanism_dp::krelation::{Expr, KRelation};
use recursive_mechanism_dp::noise::PrivacyBudget;
use recursive_mechanism_dp::observe::{parse_json, CacheOutcome, MetricsRegistry, MetricsSnapshot};
use recursive_mechanism_dp::sql::{QueryOutput, SqlSession};
use std::sync::Arc;

const SCALAR_SQL: &str = "SELECT COUNT(*) FROM visits WHERE place = 'museum'";
const GROUPED_SQL: &str = "SELECT place, COUNT(*) FROM visits GROUP BY place";

/// A small visits database with a declared public domain for the group key.
fn visits_db() -> AnnotatedDatabase {
    let mut db = AnnotatedDatabase::new();
    let mut visits = KRelation::new(["person", "place"]);
    for (person, place) in [
        ("ada", "museum"),
        ("bo", "museum"),
        ("bo", "cafe"),
        ("cy", "cafe"),
        ("dee", "park"),
    ] {
        let p = db.intern(person);
        visits.insert(
            Tuple::new([("person", Value::str(person)), ("place", Value::str(place))]),
            Expr::Var(p),
        );
    }
    db.insert_table("visits", visits);
    db.declare_public_domain(
        "visits",
        "place",
        [Value::str("museum"), Value::str("cafe"), Value::str("park")],
    );
    db
}

/// Every released value of an output, as raw bits, in a fixed order.
fn release_bits(output: QueryOutput) -> Vec<[u64; 3]> {
    match output {
        QueryOutput::Scalar(r) => vec![[
            r.noisy_answer.to_bits(),
            r.delta_hat.to_bits(),
            r.x.to_bits(),
        ]],
        QueryOutput::Grouped(g) => g
            .groups
            .into_iter()
            .map(|group| {
                [
                    group.release.noisy_answer.to_bits(),
                    group.release.delta_hat.to_bits(),
                    group.release.x.to_bits(),
                ]
            })
            .collect(),
        QueryOutput::Explained(t) => release_bits(t.output),
    }
}

#[test]
fn traced_releases_are_bit_identical_to_plain_ones_for_every_parallelism() {
    for parallelism in [
        Parallelism::Serial,
        Parallelism::Threads(2),
        Parallelism::Threads(4),
        Parallelism::Auto,
    ] {
        let params = MechanismParams::paper_edge_privacy(1.0).with_parallelism(parallelism);
        for sql in [SCALAR_SQL, GROUPED_SQL] {
            // The plain session: uncached, unmetered, untraced.
            let mut plain = SqlSession::with_seed(visits_db(), params, 42);
            let expected = release_bits(plain.query(sql).unwrap());

            // Fully instrumented: metrics registry, sequence cache, trace.
            let mut traced_session = SqlSession::with_seed(visits_db(), params, 42)
                .with_metrics(Arc::new(MetricsRegistry::new()))
                .with_cache_capacity(8);
            let traced = traced_session.query_traced(sql).unwrap();
            assert!(traced.trace.is_consistent(), "{parallelism} {sql}");
            assert_eq!(
                release_bits(traced.output),
                expected,
                "traced release diverged under {parallelism} for {sql}"
            );

            // And the SQL-level `EXPLAIN ANALYZE` spelling of the same.
            let mut explain_session = SqlSession::with_seed(visits_db(), params, 42)
                .with_metrics(Arc::new(MetricsRegistry::new()))
                .with_cache_capacity(8);
            let output = explain_session
                .query(&format!("EXPLAIN ANALYZE {sql}"))
                .unwrap();
            let explained = output.explained().expect("EXPLAIN ANALYZE wraps a trace");
            assert!(explained.trace.is_consistent());
            assert!(explained.trace.render().starts_with("EXPLAIN ANALYZE"));
            assert_eq!(
                release_bits(explained.output),
                expected,
                "EXPLAIN ANALYZE release diverged under {parallelism} for {sql}"
            );
        }
    }
}

#[test]
fn lp_totals_fold_deterministically() {
    for parallelism in [
        Parallelism::Serial,
        Parallelism::Threads(2),
        Parallelism::Threads(4),
    ] {
        let params = MechanismParams::paper_edge_privacy(1.0).with_parallelism(parallelism);
        let run = || {
            let mut session = SqlSession::with_seed(visits_db(), params, 3);
            session
                .query_batch(&[SCALAR_SQL, "SELECT COUNT(*) FROM visits", SCALAR_SQL])
                .unwrap();
            session.query_grouped(GROUPED_SQL).unwrap();
            session.lp_totals()
        };
        let (a, b) = (run(), run());
        assert!(a.h_solves > 0 && a.g_solves > 0, "{parallelism}");
        assert_eq!(a, b, "LP totals depend on the schedule under {parallelism}");
    }
}

#[test]
fn metrics_counters_are_monotone_and_the_snapshot_json_round_trips() {
    let metrics = Arc::new(MetricsRegistry::new());
    let mut session =
        SqlSession::with_seed(visits_db(), MechanismParams::paper_edge_privacy(1.0), 4)
            .with_cache_capacity(4)
            .with_metrics(Arc::clone(&metrics));
    let mut last: Option<MetricsSnapshot> = None;
    for _ in 0..3 {
        session.query_scalar(SCALAR_SQL).unwrap();
        session.query_traced(GROUPED_SQL).unwrap();
        let snap = metrics.snapshot();
        if let Some(prev) = &last {
            for name in prev.counter_names() {
                assert!(
                    snap.counter(name) >= prev.counter(name),
                    "counter {name} decreased"
                );
            }
        }
        last = Some(snap);
    }
    let snap = last.unwrap();
    assert!(snap.counter("sql.releases").unwrap() > 0);
    let json = snap.to_json();
    assert_eq!(MetricsSnapshot::parse_json(&json).unwrap(), snap);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random sessions (seed, ε, cache on/off, query shape) always produce
    /// internally consistent traces whose recorded ε equals the debit.
    #[test]
    fn traces_are_consistent_for_random_sessions(
        seed in any::<u64>(),
        epsilon in 0.5f64..4.0,
        cached in any::<bool>(),
        grouped in any::<bool>(),
    ) {
        let params = MechanismParams::paper_edge_privacy(epsilon);
        let mut session = SqlSession::with_seed(visits_db(), params, seed).with_budget(
            PrivacyBudget {
                epsilon: 100.0,
                delta: 0.0,
            },
        );
        if cached {
            session = session.with_cache_capacity(4);
        }
        let sql = if grouped { GROUPED_SQL } else { SCALAR_SQL };
        let before = session.remaining_budget().unwrap().epsilon;
        let traced = session.query_traced(sql).unwrap();
        let after = session.remaining_budget().unwrap().epsilon;

        let trace = &traced.trace;
        prop_assert!(trace.is_consistent());
        prop_assert!(trace.stage_nanos_total() <= trace.total_nanos);
        prop_assert!((trace.epsilon_spent - (before - after)).abs() < 1e-9);
        if cached {
            prop_assert!(matches!(trace.cache, CacheOutcome::Miss | CacheOutcome::Hit));
        } else {
            prop_assert!(matches!(trace.cache, CacheOutcome::Uncached));
        }
        if grouped {
            let split = trace.group_split.as_ref().expect("grouped trace has a split");
            prop_assert_eq!(split.groups, 3);
            prop_assert_eq!(trace.noise.len(), 3);
        } else {
            prop_assert!(trace.fingerprint.is_some());
            prop_assert_eq!(trace.noise.len(), 1);
        }
        // The trace serialises to parseable JSON and renders.
        prop_assert!(parse_json(&trace.to_json()).is_ok());
        prop_assert!(trace.render().starts_with("EXPLAIN ANALYZE"));
    }
}
