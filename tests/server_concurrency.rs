//! The multi-tenant server concurrency battery.
//!
//! N client threads hammer M tenants through one [`DpServer`] and the
//! invariants that make the server a *privacy* server — not just a thread
//! pool — are asserted afterwards:
//!
//! * **Budget conservation**: each tenant's debited ε sums *exactly* to its
//!   admitted releases (costs are powers of two, so concurrent Kahan
//!   ledgers have no rounding slack to hide behind), and `spent +
//!   remaining = total` bit-exactly.
//! * **Bit-identity through the shared cache**: every release produced
//!   under concurrency — where most queries are served from LP tables some
//!   *other* tenant computed — is reproduced bit-identically by a
//!   serialized, cache-free replay of the tenant's query log.
//! * **Refusals are free**: shed and refused queries (overload, per-tenant
//!   cap, budget exhaustion) leave `remaining_budget` bit-unchanged and
//!   never enter the replay log.
//!
//! A property-based test drives the same invariant over random workloads
//! and thread interleavings: whatever schedule the OS produces, the
//! per-tenant query log is a complete, deterministic account of what was
//! released.

use proptest::prelude::*;
use recursive_mechanism_dp::core::MechanismParams;
use recursive_mechanism_dp::krelation::annotate::AnnotatedDatabase;
use recursive_mechanism_dp::krelation::tuple::{Tuple, Value};
use recursive_mechanism_dp::krelation::{Expr, KRelation};
use recursive_mechanism_dp::noise::PrivacyBudget;
use recursive_mechanism_dp::runtime::AdmissionConfig;
use recursive_mechanism_dp::server::{DpServer, ServerConfig, ServerError};
use recursive_mechanism_dp::sql::{CatalogSnapshot, QueryOutput};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

/// The shared catalog every test serves: five visitors, a declared public
/// domain over `place` (with one key absent from the data).
fn snapshot() -> Arc<CatalogSnapshot> {
    let mut db = AnnotatedDatabase::new();
    let mut visits = KRelation::new(["person", "place"]);
    for (person, place) in [
        ("ada", "museum"),
        ("bo", "museum"),
        ("bo", "cafe"),
        ("cy", "cafe"),
        ("dee", "museum"),
    ] {
        let p = db.intern(person);
        visits.insert(
            Tuple::new([("person", Value::str(person)), ("place", Value::str(place))]),
            Expr::Var(p),
        );
    }
    db.insert_table("visits", visits);
    db.declare_public_domain(
        "visits",
        "place",
        [Value::str("museum"), Value::str("cafe"), Value::str("park")],
    );
    // ε = 1 per scalar release: with power-of-two budgets every ledger sum
    // below is exact, so the conservation assertions can demand equality.
    CatalogSnapshot::shared(db, MechanismParams::paper_edge_privacy(1.0))
}

fn eps(e: f64) -> PrivacyBudget {
    PrivacyBudget {
        epsilon: e,
        delta: 0.0,
    }
}

/// The mixed workload: two scalar shapes (one repeated, so the shared
/// cache gets hits) and one grouped report.
const WORKLOAD: [&str; 4] = [
    "SELECT COUNT(*) FROM visits",
    "SELECT COUNT(*) FROM visits WHERE place = 'museum'",
    "SELECT COUNT(*) FROM visits",
    "SELECT place, COUNT(*) FROM visits GROUP BY place",
];

fn assert_bit_identical(live: &QueryOutput, replayed: &QueryOutput) {
    match (live, replayed) {
        (QueryOutput::Scalar(a), QueryOutput::Scalar(b)) => {
            assert_eq!(a.noisy_answer.to_bits(), b.noisy_answer.to_bits());
            assert_eq!(a.delta_hat.to_bits(), b.delta_hat.to_bits());
        }
        (QueryOutput::Grouped(a), QueryOutput::Grouped(b)) => {
            assert_eq!(a.groups.len(), b.groups.len());
            for (ga, gb) in a.groups.iter().zip(&b.groups) {
                assert_eq!(ga.key, gb.key);
                assert_eq!(
                    ga.release.noisy_answer.to_bits(),
                    gb.release.noisy_answer.to_bits()
                );
            }
        }
        other => panic!("release shape changed under replay: {other:?}"),
    }
}

/// N threads × M tenants, one thread per tenant so each tenant's admission
/// order is its thread's issue order. Ledgers must balance exactly and the
/// serialized cache-free replay must reproduce every release bit-for-bit.
#[test]
fn per_tenant_debits_sum_exactly_to_admissions() {
    let tenants = ["alice", "bob", "carol", "dave"];
    let rounds = 3; // 4 queries per round, 1 ε each → 12 ε per tenant
    let total = 16.0;
    let server = Arc::new(DpServer::new(snapshot(), ServerConfig::default()));
    for t in tenants {
        server.register_tenant(t, eps(total));
    }

    let barrier = Arc::new(Barrier::new(tenants.len()));
    let live: Vec<(usize, Vec<QueryOutput>)> = thread::scope(|s| {
        let handles: Vec<_> = tenants
            .iter()
            .map(|&tenant| {
                let server = Arc::clone(&server);
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    barrier.wait();
                    let mut outputs = Vec::new();
                    let mut admitted = 0usize;
                    for _ in 0..rounds {
                        for sql in WORKLOAD {
                            match server.query(tenant, sql) {
                                Ok(out) => {
                                    admitted += 1;
                                    outputs.push(out);
                                }
                                Err(e) => panic!("{tenant}: unexpected refusal: {e}"),
                            }
                        }
                    }
                    (admitted, outputs)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (&tenant, (admitted, outputs)) in tenants.iter().zip(&live) {
        // Conservation: every admitted release cost exactly 1 ε.
        let spent = server.spent_budget(tenant).unwrap();
        let remaining = server.remaining_budget(tenant).unwrap();
        assert_eq!(spent.epsilon, *admitted as f64, "{tenant} ledger drifted");
        assert_eq!(
            spent.epsilon + remaining.epsilon,
            total,
            "{tenant} spent + remaining must cover the whole grant"
        );
        // The log records exactly the admitted queries, in order.
        let log = server.query_log(tenant).unwrap();
        assert_eq!(log.len(), *admitted);
        assert!(log.iter().enumerate().all(|(i, q)| q.index == i as u64));

        // Serialized cache-free replay is bit-identical, even though the
        // live run raced three other tenants through one shared cache.
        let replayed = server.replay(tenant).unwrap();
        assert_eq!(replayed.len(), outputs.len());
        for (live_out, replayed_out) in outputs.iter().zip(&replayed) {
            assert_bit_identical(live_out, replayed_out.as_ref().unwrap());
        }
    }

    // The cache was genuinely shared: the workload repeats one fingerprint
    // per tenant per round and tenants repeat each other's shapes.
    assert!(
        server.cache_stats().hits > 0,
        "expected cross-tenant cache hits"
    );
}

/// Budget exhaustion under concurrency: with 4 ε and 1 ε queries, exactly
/// four of the racing requests are admitted no matter the schedule, and
/// every refusal leaves the ledger bit-unchanged.
#[test]
fn refused_queries_leave_remaining_budget_unchanged() {
    let server = Arc::new(DpServer::new(snapshot(), ServerConfig::default()));
    server.register_tenant("alice", eps(4.0));

    let threads = 8;
    let admitted = AtomicUsize::new(0);
    let refused = AtomicUsize::new(0);
    let barrier = Barrier::new(threads);
    thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                barrier.wait();
                match server.query("alice", "SELECT COUNT(*) FROM visits") {
                    Ok(_) => admitted.fetch_add(1, Ordering::SeqCst),
                    Err(ServerError::BudgetExhausted(_)) => refused.fetch_add(1, Ordering::SeqCst),
                    Err(ServerError::TenantBusy { .. }) => refused.fetch_add(1, Ordering::SeqCst),
                    Err(e) => panic!("unexpected error: {e}"),
                };
            });
        }
    });

    let admitted = admitted.load(Ordering::SeqCst);
    let refused = refused.load(Ordering::SeqCst);
    assert_eq!(admitted + refused, threads);
    assert!(admitted <= 4, "only 4 ε were ever grantable");
    let spent = server.spent_budget("alice").unwrap();
    assert_eq!(spent.epsilon, admitted as f64, "refusals must cost nothing");
    assert_eq!(server.query_log("alice").unwrap().len(), admitted);

    // Once exhausted, further refusals do not move the ledger by a single
    // bit.
    if admitted == 4 {
        let before = server.remaining_budget("alice").unwrap().epsilon.to_bits();
        for _ in 0..3 {
            let err = server
                .query("alice", "SELECT COUNT(*) FROM visits")
                .unwrap_err();
            assert!(matches!(err, ServerError::BudgetExhausted(_)));
        }
        let after = server.remaining_budget("alice").unwrap().epsilon.to_bits();
        assert_eq!(before, after);
    }
}

/// Load shedding: a one-slot gate with a zero-depth queue refuses overflow
/// with `Overloaded` *before* pricing, so shed requests cost nothing and
/// admitted ones still balance exactly.
#[test]
fn shed_requests_consume_no_budget() {
    let config = ServerConfig {
        admission: AdmissionConfig {
            max_in_flight: 1,
            max_waiting: 0,
        },
        ..ServerConfig::default()
    };
    let server = Arc::new(DpServer::new(snapshot(), config));
    server.register_tenant("alice", eps(64.0));

    let threads = 8;
    let admitted = AtomicUsize::new(0);
    let shed = AtomicUsize::new(0);
    let barrier = Barrier::new(threads);
    thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                barrier.wait();
                for _ in 0..4 {
                    match server.query("alice", "SELECT COUNT(*) FROM visits") {
                        Ok(_) => admitted.fetch_add(1, Ordering::SeqCst),
                        Err(ServerError::Overloaded { .. }) => shed.fetch_add(1, Ordering::SeqCst),
                        Err(e) => panic!("unexpected error: {e}"),
                    };
                }
            });
        }
    });

    let admitted = admitted.load(Ordering::SeqCst);
    assert!(admitted >= 1, "a one-slot gate still admits serially");
    assert_eq!(
        server.spent_budget("alice").unwrap().epsilon,
        admitted as f64,
        "shed requests must not touch the ledger"
    );
    let snapshot = server.metrics().snapshot();
    assert_eq!(
        snapshot.counter("server.shed.overloaded").unwrap_or(0),
        shed.load(Ordering::SeqCst) as u64,
        "every shed is counted"
    );
}

proptest! {
    // Each case spawns real threads and solves real LPs; a handful of
    // cases exercises plenty of schedules across CI runs.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Determinism under concurrency: for a random per-tenant workload
    /// raced on real threads through one shared server, the serialized
    /// cache-free replay of each tenant's query log reproduces its
    /// releases bit-identically — the releases are a function of the log,
    /// not of the schedule.
    #[test]
    fn any_interleaving_replays_bit_identically(
        workloads in proptest::collection::vec(
            proptest::collection::vec(0usize..WORKLOAD.len(), 1..5),
            2..4,
        )
    ) {
        let server = Arc::new(DpServer::new(snapshot(), ServerConfig::default()));
        let names: Vec<String> = (0..workloads.len()).map(|i| format!("t{i}")).collect();
        for name in &names {
            server.register_tenant(name, eps(64.0));
        }

        let barrier = Arc::new(Barrier::new(workloads.len()));
        let live: Vec<Vec<QueryOutput>> = thread::scope(|s| {
            let handles: Vec<_> = names
                .iter()
                .zip(&workloads)
                .map(|(name, workload)| {
                    let server = Arc::clone(&server);
                    let barrier = Arc::clone(&barrier);
                    s.spawn(move || {
                        barrier.wait();
                        workload
                            .iter()
                            .map(|&q| server.query(name, WORKLOAD[q]).expect("within budget"))
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for (name, outputs) in names.iter().zip(&live) {
            let replayed = server.replay(name).unwrap();
            prop_assert_eq!(replayed.len(), outputs.len());
            for (live_out, replayed_out) in outputs.iter().zip(&replayed) {
                assert_bit_identical(live_out, replayed_out.as_ref().unwrap());
            }
        }
    }
}
