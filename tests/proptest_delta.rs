//! Property-based tests of delta-scoped invalidation and warm re-release.
//!
//! Two properties the epoch-scoped cache keys must satisfy for *every*
//! random mutation set:
//!
//! * **Exactness of invalidation** — after applying a set of intern-only
//!   deltas and sweeping the cache, a cached query misses **iff** it scans
//!   at least one mutated table. Untouched-table fingerprints are
//!   byte-identical across the snapshot swap, so their entries keep
//!   hitting; mutated-table fingerprints moved, so theirs cannot.
//! * **Bit-identity of warm re-release** — re-releasing the workload over
//!   the post-delta snapshot through the warm-refresh path (parked seeds
//!   from the stale sweep) produces releases bit-identical to a cold
//!   recompute with an empty cache, for the same session seed, under every
//!   [`Parallelism`] setting.

use proptest::prelude::*;
use recursive_mechanism_dp::core::{MechanismParams, SequenceCache};
use recursive_mechanism_dp::krelation::annotate::{AnnotatedDatabase, AnnotationRule};
use recursive_mechanism_dp::krelation::tuple::{Tuple, Value};
use recursive_mechanism_dp::krelation::KRelation;
use recursive_mechanism_dp::runtime::Parallelism;
use recursive_mechanism_dp::sql::{CatalogSnapshot, SqlSession};
use std::collections::BTreeSet;
use std::sync::Arc;

const TABLES: [&str; 3] = ["visits", "residents", "badges"];
const PEOPLE: [&str; 4] = ["ada", "bo", "cy", "dee"];
const PLACES: [&str; 3] = ["museum", "cafe", "park"];

fn row(person: &str, place: &str) -> Tuple {
    Tuple::new([("person", Value::str(person)), ("place", Value::str(place))])
}

/// Three owner-annotated tables loaded through the delta path itself, so
/// every `person:<name>` participant label is interned up front and later
/// mutations drawn from the same pool are intern-only (the universe epoch
/// never moves — only the mutated tables' epochs do).
fn base_snapshot(parallelism: Parallelism) -> Arc<CatalogSnapshot> {
    let mut db = AnnotatedDatabase::new();
    for table in TABLES {
        db.insert_table(table, KRelation::new(["person", "place"]));
        db.declare_annotation_rule(table, AnnotationRule::OwnerColumn("person".into()));
    }
    for (i, table) in TABLES.iter().enumerate() {
        let rows = PEOPLE
            .iter()
            .take(i + 2)
            .map(|p| row(p, PLACES[i % PLACES.len()]));
        db.apply_delta(table, rows).unwrap();
    }
    CatalogSnapshot::shared(
        db,
        MechanismParams::paper_edge_privacy(1.0).with_parallelism(parallelism),
    )
}

/// The workload: each query paired with the set of table indices it scans.
fn workload() -> Vec<(String, Vec<usize>)> {
    let mut queries: Vec<(String, Vec<usize>)> = TABLES
        .iter()
        .enumerate()
        .map(|(i, t)| (format!("SELECT COUNT(*) FROM {t}"), vec![i]))
        .collect();
    queries.push((
        "SELECT COUNT(*) FROM visits JOIN residents ON visits.person = residents.person".to_owned(),
        vec![0, 1],
    ));
    queries.push((
        "SELECT COUNT(*) FROM visits v1 JOIN visits v2 ON v1.place = v2.place \
         WHERE v1.person < v2.person"
            .to_owned(),
        vec![0],
    ));
    queries
}

/// One random mutation: (table index, person index, place index). People
/// come from the pre-interned pool, so deltas never bump the universe epoch.
fn arb_mutations() -> impl Strategy<Value = Vec<(usize, usize, usize)>> {
    proptest::collection::vec(
        (
            0usize..TABLES.len(),
            0usize..PEOPLE.len(),
            0usize..PLACES.len(),
        ),
        1..5,
    )
}

/// Applies the mutations as a chain of forked snapshots and returns the
/// final snapshot plus the set of mutated table indices.
fn apply_mutations(
    snapshot: &Arc<CatalogSnapshot>,
    mutations: &[(usize, usize, usize)],
) -> (Arc<CatalogSnapshot>, BTreeSet<usize>) {
    let mut next = Arc::clone(snapshot);
    let mut mutated = BTreeSet::new();
    for &(t, p, pl) in mutations {
        next = next
            .with_delta(TABLES[t], [row(PEOPLE[p], PLACES[pl])])
            .unwrap();
        mutated.insert(t);
    }
    (next, mutated)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn deltas_invalidate_exactly_the_queries_scanning_a_mutated_table(
        mutations in arb_mutations(),
    ) {
        let snapshot = base_snapshot(Parallelism::Serial);
        let cache = Arc::new(SequenceCache::new(64));
        let queries = workload();

        let mut warmup = SqlSession::over(Arc::clone(&snapshot), 7)
            .with_sequence_cache(Arc::clone(&cache));
        for (sql, _) in &queries {
            warmup.query_scalar(sql).unwrap();
        }
        let primed = cache.stats();
        prop_assert_eq!(primed.misses as usize, queries.len(), "all cold at first");

        let (next, mutated) = apply_mutations(&snapshot, &mutations);
        let swept = cache.purge_stale(&next.database().current_epoch_stamps());
        let expected_stale = queries
            .iter()
            .filter(|(_, scans)| scans.iter().any(|t| mutated.contains(t)))
            .count();
        prop_assert_eq!(swept, expected_stale, "sweep is delta-scoped");
        prop_assert_eq!(cache.stats().evictions_stale as usize, expected_stale);

        let mut session = SqlSession::over(Arc::clone(&next), 8)
            .with_sequence_cache(Arc::clone(&cache));
        for (sql, scans) in &queries {
            let before = cache.stats();
            session.query_scalar(sql).unwrap();
            let after = cache.stats();
            let stale = scans.iter().any(|t| mutated.contains(t));
            if stale {
                prop_assert_eq!(after.misses, before.misses + 1,
                    "query scanning a mutated table must miss: {}", sql);
            } else {
                prop_assert_eq!(after.hits, before.hits + 1,
                    "query over untouched tables must still hit: {}", sql);
                prop_assert_eq!(after.misses, before.misses,
                    "no cold solve for untouched tables: {}", sql);
            }
        }
    }

    #[test]
    fn warm_refresh_is_bit_identical_to_cold_recompute_under_every_parallelism(
        mutations in arb_mutations(),
        seed in 0u64..1024,
    ) {
        for parallelism in [Parallelism::Serial, Parallelism::Threads(2), Parallelism::Threads(4)] {
            let snapshot = base_snapshot(parallelism);
            let cache = Arc::new(SequenceCache::new(64));
            let queries = workload();

            // Prime the cache over the base snapshot, then mutate and sweep:
            // the swept entries park their seeds as warm-refresh bases.
            let mut warmup = SqlSession::over(Arc::clone(&snapshot), 3)
                .with_sequence_cache(Arc::clone(&cache));
            for (sql, _) in &queries {
                warmup.query_scalar(sql).unwrap();
            }
            let (next, _) = apply_mutations(&snapshot, &mutations);
            cache.purge_stale(&next.database().current_epoch_stamps());

            // Warm path: hits where possible, warm refreshes elsewhere.
            let mut warm = SqlSession::over(Arc::clone(&next), seed)
                .with_sequence_cache(Arc::clone(&cache));
            // Cold path: same snapshot, same seed, empty-cache recompute.
            let mut cold = SqlSession::over(Arc::clone(&next), seed);
            for (sql, _) in &queries {
                let w = warm.query_scalar(sql).unwrap();
                let c = cold.query_scalar(sql).unwrap();
                prop_assert_eq!(w.true_answer.to_bits(), c.true_answer.to_bits());
                prop_assert!(
                    w.noisy_answer.to_bits() == c.noisy_answer.to_bits(),
                    "warm and cold releases diverge under {:?} for {}: {} vs {}",
                    parallelism, sql, w.noisy_answer, c.noisy_answer
                );
            }
        }
    }
}
