//! Warm-started sequence chains, end to end (the fig-4 workloads).
//!
//! The point of the revised-simplex refactor: solving a whole `H`/`G` family
//! as warm-started chains must (a) produce the same sequences as
//! entry-by-entry cold solves within tolerance, (b) spend strictly fewer
//! total simplex pivots — observable through `LpWorkStats` — and (c) keep
//! the serial/parallel bit-identity contract of `tests/parallel_determinism.rs`
//! intact (that file runs unchanged next to this one).

use rand::rngs::StdRng;
use rand::SeedableRng;
use recursive_mechanism_dp::core::efficient::EfficientSequences;
use recursive_mechanism_dp::core::params::MechanismParams;
use recursive_mechanism_dp::core::sequences::MechanismSequences;
use recursive_mechanism_dp::core::subgraph::{PrivacyUnit, SubgraphCounter};
use recursive_mechanism_dp::core::{Parallelism, SensitiveKRelation};
use recursive_mechanism_dp::graph::{generators, Pattern};

/// A fig-4 workload at small scale: `pattern` counts under node privacy on a
/// G(n, p) random graph. (Kept small enough for debug-mode CI: a 2-star
/// family on this graph is still a few-hundred-row LP per entry.)
fn fig4_relation(pattern: Pattern) -> SensitiveKRelation {
    let mut rng = StdRng::seed_from_u64(77);
    let graph = generators::gnp_average_degree(16, 4.5, &mut rng);
    SubgraphCounter::new(
        pattern,
        PrivacyUnit::Node,
        MechanismParams::paper_node_privacy(0.5),
    )
    .build_sensitive_relation(&graph)
}

#[test]
fn warm_chains_beat_cold_solves_on_the_fig4_families() {
    for pattern in [Pattern::triangle(), Pattern::k_star(2)] {
        let name = pattern.name().to_string();
        let relation = fig4_relation(pattern);
        let n = relation.num_participants();

        // Warm-started chains (the default) vs entry-by-entry cold solves
        // (run length 1 disables warm starts).
        let mut chained = EfficientSequences::new(relation.clone());
        let mut cold = EfficientSequences::new(relation).with_chain_run_len(1);
        chained.precompute(Parallelism::Serial).unwrap();
        cold.precompute(Parallelism::Serial).unwrap();

        // Same number of solves either way — the chains change *how* each
        // entry is solved, not *what* is solved.
        assert_eq!(chained.stats().h_solves, n + 1, "{name}");
        assert_eq!(cold.stats().h_solves, n + 1, "{name}");
        assert_eq!(chained.stats().g_solves, n + 1, "{name}");

        // Same sequences within tolerance.
        for i in 0..=n {
            let (hw, hc) = (chained.h(i).unwrap(), cold.h(i).unwrap());
            assert!((hw - hc).abs() < 1e-6, "{name} H_{i}: {hw} vs {hc}");
            let (gw, gc) = (chained.g(i).unwrap(), cold.g(i).unwrap());
            assert!((gw - gc).abs() < 1e-6, "{name} G_{i}: {gw} vs {gc}");
        }

        // The headline claim, asserted via LpWorkStats: strictly fewer total
        // pivots, with the savings visible in the right counters.
        let warm = chained.stats();
        let cold = cold.stats();
        assert!(
            warm.total_pivots < cold.total_pivots,
            "{name}: warm chains spent {} pivots, cold solves {}",
            warm.total_pivots,
            cold.total_pivots
        );
        assert!(warm.warm_start_hits > 0, "{name}");
        assert_eq!(cold.warm_start_hits, 0, "{name}");
        assert!(
            warm.phase1_pivots < cold.phase1_pivots,
            "{name}: warm re-entry must cut phase-1 work ({} vs {})",
            warm.phase1_pivots,
            cold.phase1_pivots
        );
    }
}

#[test]
fn warm_chains_survive_parallelism_bit_for_bit() {
    // The chunked-chain mapping: runs are cut at fixed points, so the warm
    // starts inside a run happen identically no matter how many workers the
    // runs are spread over.
    let relation = fig4_relation(Pattern::triangle());
    let n = relation.num_participants();

    let mut serial = EfficientSequences::new(relation.clone());
    serial.precompute(Parallelism::Serial).unwrap();
    for workers in [2usize, 5] {
        let mut parallel = EfficientSequences::new(relation.clone());
        parallel.precompute(Parallelism::Threads(workers)).unwrap();
        for i in 0..=n {
            assert_eq!(serial.h(i).unwrap(), parallel.h(i).unwrap(), "H_{i}");
            assert_eq!(serial.g(i).unwrap(), parallel.g(i).unwrap(), "G_{i}");
        }
        assert_eq!(
            serial.stats().total_pivots,
            parallel.stats().total_pivots,
            "{workers} workers: same chains, same pivots"
        );
        assert_eq!(
            serial.stats().warm_start_hits,
            parallel.stats().warm_start_hits,
            "{workers} workers: same chains, same warm starts"
        );
    }
}
