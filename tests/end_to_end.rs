//! Cross-crate integration tests: graph substrate → relational algebra →
//! sensitive K-relation → recursive mechanism, plus comparisons between the
//! general and the efficient instantiations.

use rand::rngs::StdRng;
use rand::SeedableRng;
use recursive_mechanism_dp::core::efficient::EfficientSequences;
use recursive_mechanism_dp::core::general::GeneralSequences;
use recursive_mechanism_dp::core::params::MechanismParams;
use recursive_mechanism_dp::core::sequences::MechanismSequences;
use recursive_mechanism_dp::core::subgraph::{PrivacyUnit, SubgraphCounter};
use recursive_mechanism_dp::core::{RecursiveMechanism, SensitiveKRelation};
use recursive_mechanism_dp::graph::subgraph::triangle_count;
use recursive_mechanism_dp::graph::{generators, Graph, Pattern};
use recursive_mechanism_dp::krelation::algebra::{natural_join, rename, select};
use recursive_mechanism_dp::krelation::participant::ParticipantId;
use recursive_mechanism_dp::krelation::tuple::{Attr, Tuple};
use recursive_mechanism_dp::krelation::{Expr, KRelation};
use recursive_mechanism_dp::noise::accuracy::{median, relative_error};

/// The paper's Fig. 2 graph.
fn paper_graph() -> Graph {
    Graph::from_edges(6, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (2, 4), (3, 4)])
}

/// Counting triangles through an explicit relational-algebra plan (a 3-way
/// self-join of the annotated edge table) must give the same sensitive
/// K-relation semantics as the direct subgraph-counting front-end: same true
/// answer, same universal empirical sensitivity.
#[test]
fn relational_algebra_plan_matches_subgraph_front_end() {
    let graph = paper_graph();

    // Edge table with both orientations, annotated for node privacy.
    let mut edges = KRelation::new(["x", "y"]);
    for &(u, v) in graph.edges() {
        for (a, b) in [(u, v), (v, u)] {
            edges.insert(
                Tuple::new([("x", a), ("y", b)]),
                Expr::conjunction_of_vars([ParticipantId(a), ParticipantId(b)]),
            );
        }
    }
    let e_xy = edges.clone();
    let e_yz = rename(&edges, |attr| match attr.name() {
        "x" => Attr::new("y"),
        _ => Attr::new("z"),
    });
    let e_xz = rename(&edges, |attr| match attr.name() {
        "x" => Attr::new("x"),
        _ => Attr::new("z"),
    });
    let triangles_rel = select(&natural_join(&natural_join(&e_xy, &e_yz), &e_xz), |t| {
        let x = t.get_named("x").unwrap().as_int().unwrap();
        let y = t.get_named("y").unwrap().as_int().unwrap();
        let z = t.get_named("z").unwrap().as_int().unwrap();
        x < y && y < z
    });

    let participants: Vec<ParticipantId> = (0..6).map(ParticipantId).collect();
    let algebra_query = SensitiveKRelation::new(&triangles_rel, participants, |_| 1.0);

    let counter = SubgraphCounter::new(
        Pattern::triangle(),
        PrivacyUnit::Node,
        MechanismParams::paper_node_privacy(0.5),
    );
    let front_end_query = counter.build_sensitive_relation(&graph);

    assert_eq!(algebra_query.true_answer(), 3.0);
    assert_eq!(algebra_query.true_answer(), front_end_query.true_answer());
    assert_eq!(algebra_query.support_size(), front_end_query.support_size());
    // The join-produced annotations repeat variables (e.g. (a∧b)∧(b∧c)∧(a∧c)),
    // but the impacted-participant structure is identical, so the universal
    // empirical sensitivity agrees with the front-end's.
    for p in (0..6).map(ParticipantId) {
        assert_eq!(
            algebra_query.universal_sensitivity_of(p),
            front_end_query.universal_sensitivity_of(p),
            "participant {p}"
        );
    }
}

/// On a tiny instance the general (subset-enumeration) and the efficient
/// (LP relaxation) instantiations must agree on the endpoints of H and
/// bracket each other in the documented direction in between.
#[test]
fn general_and_efficient_instantiations_are_consistent() {
    let graph = paper_graph();
    let counter = SubgraphCounter::new(
        Pattern::triangle(),
        PrivacyUnit::Node,
        MechanismParams::paper_node_privacy(0.5),
    );
    let query = counter.build_sensitive_relation(&graph);

    let mut efficient = EfficientSequences::new(query.clone());
    let mut general = GeneralSequences::build(&query).unwrap();

    let n = query.num_participants();
    assert!((efficient.h(n).unwrap() - general.h(n).unwrap()).abs() < 1e-6);
    assert!((efficient.h(0).unwrap() - 0.0).abs() < 1e-9);
    for i in 0..=n {
        let relaxed = efficient.h(i).unwrap();
        let subset = general.h(i).unwrap();
        assert!(
            relaxed <= subset + 1e-6,
            "H_{i}: relaxation {relaxed} must not exceed the subset minimum {subset}"
        );
        assert!(relaxed >= -1e-9);
    }
}

/// End-to-end node-privacy releases concentrate around the true triangle
/// count once the graph is large enough relative to the sensitivity, and the
/// clipped estimate X never exceeds the true answer.
#[test]
fn node_privacy_releases_concentrate_on_a_mid_size_graph() {
    let mut rng = StdRng::seed_from_u64(5);
    let graph = generators::gnp_average_degree(40, 8.0, &mut rng);
    let true_count = triangle_count(&graph) as f64;

    let counter = SubgraphCounter::new(
        Pattern::triangle(),
        PrivacyUnit::Edge,
        MechanismParams::paper_edge_privacy(1.0),
    );
    let mut prepared = counter.prepare(&graph).unwrap();
    assert_eq!(prepared.true_count, true_count);

    let answers = prepared.release_many(41, &mut rng).unwrap();
    let errors: Vec<f64> = answers
        .iter()
        .map(|a| relative_error(a.noisy_count, true_count))
        .collect();
    let med = median(&errors);
    assert!(
        med < 1.0,
        "median relative error {med} unexpectedly large for edge privacy at eps=1"
    );
    for a in &answers {
        assert!(a.release.x <= true_count + 1e-6);
    }
}

/// Withdrawing a node from the graph (the node-privacy notion of
/// neighbouring) never increases the deterministic threshold Δ by more than
/// the factor e^β (Lemma 1), checked end-to-end through the subgraph
/// front-end.
#[test]
fn delta_is_stable_across_node_withdrawal() {
    let graph = paper_graph();
    let params = MechanismParams::paper_node_privacy(0.5);
    let beta = params.beta;

    let counter = SubgraphCounter::new(Pattern::triangle(), PrivacyUnit::Node, params);

    let mut full = counter.prepare(&graph).unwrap();
    let delta_full = full.mechanism_mut().delta().unwrap();

    for v in 0..6u32 {
        // The neighbouring database: node v withdraws, taking its incident
        // edges along. The participant universe keeps the same size (the
        // node is still listed, just contributes nothing), which mirrors the
        // K-relation restriction R(t)|v→False.
        let smaller_graph = graph.without_node(v);
        let mut smaller = counter.prepare(&smaller_graph).unwrap();
        let delta_smaller = smaller.mechanism_mut().delta().unwrap();
        let log_gap = (delta_full.ln() - delta_smaller.ln()).abs();
        assert!(
            log_gap <= beta + 1e-9,
            "withdrawing node {v}: |ln Δ − ln Δ'| = {log_gap} exceeds β = {beta}"
        );
    }
}

/// The whole pipeline stays usable for a weighted linear statistic (not just
/// counting): weighting triangles by a per-occurrence payload.
#[test]
fn weighted_linear_statistic_release() {
    let graph = paper_graph();
    let counter = SubgraphCounter::new(
        Pattern::triangle(),
        PrivacyUnit::Node,
        MechanismParams::paper_node_privacy(1.0),
    );
    let relation_tuples = counter.build_sensitive_relation(&graph);
    // Re-weight: the first tuple counts double.
    let terms: Vec<(Expr, f64)> = relation_tuples
        .terms()
        .iter()
        .enumerate()
        .map(|(i, (e, _))| (e.clone(), if i == 0 { 2.0 } else { 1.0 }))
        .collect();
    let weighted = SensitiveKRelation::from_terms(relation_tuples.participants().to_vec(), terms);
    assert_eq!(weighted.true_answer(), 4.0);

    let mut mech = RecursiveMechanism::new(
        EfficientSequences::new(weighted),
        MechanismParams::paper_node_privacy(1.0),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(13);
    let release = mech.release(&mut rng).unwrap();
    assert!((release.true_answer - 4.0).abs() < 1e-6);
    assert!(release.noisy_answer.is_finite());
}
