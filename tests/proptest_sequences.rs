//! Property-based tests of the efficient instantiation on random small
//! sensitive K-relations.
//!
//! For every randomly generated relation the defining properties of the
//! paper's constructions must hold:
//!
//! * `H_0 = 0`, `H` non-decreasing and convex, `H_{|P|}` = true answer;
//! * the relaxed `H_i` never exceeds the subset-based minimum of the general
//!   instantiation;
//! * `G` non-decreasing, `G_{|P|} ≤ 2·S·ŨS`;
//! * `G` is a 2-bounding sequence of `H`;
//! * restricting one participant to `False` yields a pair satisfying the
//!   recursive-monotonicity inequalities.

use proptest::prelude::*;
use recursive_mechanism_dp::core::efficient::EfficientSequences;
use recursive_mechanism_dp::core::general::GeneralSequences;
use recursive_mechanism_dp::core::sequences::{
    validate_bounding_property, validate_convexity, validate_monotone_start_at_zero,
    validate_recursive_monotonicity, MechanismSequences,
};
use recursive_mechanism_dp::core::SensitiveKRelation;
use recursive_mechanism_dp::krelation::participant::ParticipantId;
use recursive_mechanism_dp::krelation::Expr;

/// A random positive expression over participants `0..n_participants` with
/// bounded depth, plus a weight.
fn arb_expr(n_participants: u32) -> impl Strategy<Value = Expr> {
    let leaf = (0..n_participants).prop_map(|i| Expr::var(ParticipantId(i)));
    leaf.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::and),
            proptest::collection::vec(inner, 2..4).prop_map(Expr::or),
        ]
    })
}

fn arb_relation() -> impl Strategy<Value = (u32, Vec<(Expr, f64)>)> {
    (3u32..=6).prop_flat_map(|n| {
        let terms = proptest::collection::vec(
            (arb_expr(n), prop_oneof![Just(1.0), Just(2.0), Just(0.5)]),
            1..6,
        );
        (Just(n), terms)
    })
}

fn build(n: u32, terms: &[(Expr, f64)]) -> SensitiveKRelation {
    SensitiveKRelation::from_terms((0..n).map(ParticipantId).collect(), terms.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn efficient_sequences_satisfy_their_defining_properties((n, terms) in arb_relation()) {
        let query = build(n, &terms);
        let true_answer = query.true_answer();
        let s_max = query.max_phi_sensitivity();
        let universal = query.universal_sensitivity();

        let mut seq = EfficientSequences::new(query.clone());
        let participants = query.num_participants();

        // Endpoints.
        prop_assert!((seq.h(0).unwrap()).abs() < 1e-6);
        prop_assert!((seq.h(participants).unwrap() - true_answer).abs() < 1e-6);

        // Monotonicity, convexity, 2-bounding.
        prop_assert!(validate_monotone_start_at_zero(&mut seq, |s, i| s.h(i)).is_ok());
        prop_assert!(validate_monotone_start_at_zero(&mut seq, |s, i| s.g(i)).is_ok());
        prop_assert!(validate_convexity(&mut seq).is_ok());
        prop_assert!(validate_bounding_property(&mut seq).is_ok());

        // G_{|P|} ≤ 2·S·ŨS (Sec. 5.2).
        let g_full = seq.g(participants).unwrap();
        prop_assert!(g_full <= 2.0 * s_max * universal + 1e-6,
            "G_|P| = {g_full} exceeds 2·S·ŨS = {}", 2.0 * s_max * universal);

        // The relaxation never exceeds the subset-based minimum.
        let general = GeneralSequences::build(&query).unwrap();
        for i in 0..=participants {
            prop_assert!(seq.h(i).unwrap() <= general.h_entries()[i] + 1e-6);
        }
    }

    #[test]
    fn participant_withdrawal_preserves_recursive_monotonicity_of_h((n, terms) in arb_relation()) {
        // For arbitrary positive annotations only the H-sequence inequalities
        // of Def. 17 are checked across the neighbouring pair. The
        // G-sequence of Eq. 19 satisfies them for the conjunctive
        // (subgraph-counting) annotations — covered by
        // `conjunctive_withdrawal_preserves_full_recursive_monotonicity`
        // below and by the Fig. 2(a) unit test — but proptest found tiny
        // disjunctive counterexamples to the cross-database half
        // (e.g. {p2∨p1, p0∨p2} vs its p2-restriction); see DESIGN.md §7 for
        // the discussion.
        let larger = build(n, &terms);
        let withdrawn = ParticipantId(n - 1);
        let smaller_terms: Vec<(Expr, f64)> = larger
            .terms()
            .iter()
            .map(|(e, w)| (e.restrict(withdrawn, false), *w))
            .collect();
        let smaller = SensitiveKRelation::from_terms(
            (0..n - 1).map(ParticipantId).collect(),
            smaller_terms,
        );

        let mut small_seq = EfficientSequences::new(smaller);
        let mut large_seq = EfficientSequences::new(larger);
        let n1 = small_seq.num_participants();
        for i in 0..=n1 {
            let h1 = small_seq.h(i).unwrap();
            let h2 = large_seq.h(i).unwrap();
            let h2_next = large_seq.h(i + 1).unwrap();
            prop_assert!(h2 <= h1 + 1e-6, "H_{i}(P2) = {h2} > H_{i}(P1) = {h1}");
            prop_assert!(h1 <= h2_next + 1e-6, "H_{i}(P1) = {h1} > H_{}(P2) = {h2_next}", i + 1);
        }
    }

    #[test]
    fn conjunctive_withdrawal_preserves_full_recursive_monotonicity(
        n in 3u32..=6,
        clauses in proptest::collection::vec(
            (proptest::collection::btree_set(0u32..6, 2..4), prop_oneof![Just(1.0), Just(2.0)]),
            1..5,
        ),
    ) {
        // Subgraph-counting-shaped relations: every annotation is a pure
        // conjunction of distinct participants. Both H and G must satisfy the
        // full recursive-monotonicity conditions across the neighbouring pair.
        let terms: Vec<(Expr, f64)> = clauses
            .iter()
            .map(|(vars, w)| {
                (
                    Expr::conjunction_of_vars(vars.iter().map(|&v| ParticipantId(v % n))),
                    *w,
                )
            })
            .collect();
        let larger = build(n, &terms);
        let withdrawn = ParticipantId(n - 1);
        let smaller_terms: Vec<(Expr, f64)> = larger
            .terms()
            .iter()
            .map(|(e, w)| (e.restrict(withdrawn, false), *w))
            .collect();
        let smaller = SensitiveKRelation::from_terms(
            (0..n - 1).map(ParticipantId).collect(),
            smaller_terms,
        );

        let mut small_seq = EfficientSequences::new(smaller);
        let mut large_seq = EfficientSequences::new(larger);
        prop_assert!(
            validate_recursive_monotonicity(&mut small_seq, &mut large_seq).is_ok(),
            "recursive monotonicity violated for conjunctive annotations"
        );
    }
}
