//! Integration tests of the SQL frontend against hand-built algebra plans,
//! plus property tests that compiled queries stay inside the monotone
//! (negation-free) fragment the recursive mechanism requires.

use proptest::prelude::*;
use recursive_mechanism_dp::core::sensitive::check_monotonicity_exhaustive;
use recursive_mechanism_dp::core::{MechanismParams, SensitiveKRelation};
use recursive_mechanism_dp::krelation::algebra::{natural_join, rename, select};
use recursive_mechanism_dp::krelation::annotate::AnnotatedDatabase;
use recursive_mechanism_dp::krelation::tuple::{Attr, Tuple, Value};
use recursive_mechanism_dp::krelation::{Expr, KRelation};
use recursive_mechanism_dp::sql::{parse, SqlError, SqlSession};

/// The residents/visits database of the `sql_unrestricted_join` example.
fn database() -> AnnotatedDatabase {
    let mut db = AnnotatedDatabase::new();
    let residents_data = [
        ("ada", "rome"),
        ("bo", "rome"),
        ("cy", "oslo"),
        ("dee", "oslo"),
        ("eli", "lima"),
    ];
    let visits_data = [
        ("ada", "museum"),
        ("ada", "cafe"),
        ("ada", "park"),
        ("bo", "museum"),
        ("cy", "museum"),
        ("cy", "cafe"),
        ("dee", "park"),
        ("eli", "park"),
        ("eli", "cafe"),
    ];
    let mut residents = KRelation::new(["person", "city"]);
    for (person, city) in residents_data {
        let p = db.intern(person);
        residents.insert(
            Tuple::new([("person", Value::str(person)), ("city", Value::str(city))]),
            Expr::Var(p),
        );
    }
    let mut visits = KRelation::new(["person", "place"]);
    for (person, place) in visits_data {
        let p = db.intern(person);
        visits.insert(
            Tuple::new([("person", Value::str(person)), ("place", Value::str(place))]),
            Expr::Var(p),
        );
    }
    db.insert_table("residents", residents);
    db.insert_table("visits", visits);
    db
}

fn session() -> SqlSession {
    SqlSession::with_seed(database(), MechanismParams::paper_edge_privacy(1.0), 7)
}

/// The annotations of a relation as a sorted multiset of rendered strings —
/// schema-independent, so a SQL output (qualified attributes) can be compared
/// against a hand-built plan (short attribute names).
fn annotation_fingerprint(r: &KRelation) -> Vec<String> {
    let mut out: Vec<String> = r.annotations().map(|e| format!("{e}")).collect();
    out.sort();
    out
}

#[test]
fn four_way_self_join_matches_hand_built_algebra() {
    let db = database();
    let visits = db.table("visits").unwrap().clone();
    let residents = db.table("residents").unwrap().clone();

    // Hand-built: the plan from the example, written with rename+natural_join.
    let v1 = rename(&visits, |a| match a.name() {
        "person" => Attr::new("p1"),
        other => Attr::new(other),
    });
    let v2 = rename(&visits, |a| match a.name() {
        "person" => Attr::new("p2"),
        other => Attr::new(other),
    });
    let same_place = select(&natural_join(&v1, &v2), |t| {
        t.get_named("p1").unwrap() < t.get_named("p2").unwrap()
    });
    let r1 = rename(&residents, |a| match a.name() {
        "person" => Attr::new("p1"),
        "city" => Attr::new("city1"),
        other => Attr::new(other),
    });
    let r2 = rename(&residents, |a| match a.name() {
        "person" => Attr::new("p2"),
        "city" => Attr::new("city2"),
        other => Attr::new(other),
    });
    let joined = natural_join(&natural_join(&same_place, &r1), &r2);
    let hand_built = select(&joined, |t| {
        t.get_named("city1").unwrap() != t.get_named("city2").unwrap()
    });

    let sql = "SELECT COUNT(*) \
               FROM Visits v1 JOIN Visits v2 ON v1.place = v2.place \
               JOIN Residents r1 ON r1.person = v1.person \
               JOIN Residents r2 ON r2.person = v2.person \
               WHERE r1.city <> r2.city AND v1.person < v2.person";
    let mut session = session();
    let output = session.evaluate(sql).unwrap();

    assert_eq!(output.len(), hand_built.len());
    assert_eq!(
        annotation_fingerprint(&output),
        annotation_fingerprint(&hand_built)
    );

    // And the DP release reports the same true answer.
    let release = session.query_scalar(sql).unwrap();
    assert_eq!(release.true_answer, hand_built.len() as f64);
    assert!(release.noisy_answer.is_finite());
    assert!(release.delta_hat > 0.0);
}

#[test]
fn two_way_join_with_literal_filter_matches_hand_built_algebra() {
    let db = database();
    let visits = db.table("visits").unwrap().clone();
    let residents = db.table("residents").unwrap().clone();

    // Who visited the museum, joined with their city, restricted to rome.
    let joined = natural_join(&visits, &residents);
    let hand_built = select(&joined, |t| {
        t.get_named("place").unwrap() == &Value::str("museum")
            && t.get_named("city").unwrap() == &Value::str("rome")
    });

    let sql = "SELECT COUNT(*) FROM visits v JOIN residents r ON v.person = r.person \
               WHERE v.place = 'museum' AND r.city = 'rome'";
    let output = session().evaluate(sql).unwrap();
    assert_eq!(output.len(), hand_built.len());
    assert_eq!(
        annotation_fingerprint(&output),
        annotation_fingerprint(&hand_built)
    );
}

#[test]
fn sum_aggregate_matches_hand_computed_weights() {
    let mut db = database();
    let mut trips = KRelation::new(["person", "distance"]);
    for (person, distance) in [("ada", 10i64), ("bo", 3), ("cy", 0), ("dee", 7)] {
        let p = db.intern(person);
        trips.insert(
            Tuple::new([
                ("person", Value::str(person)),
                ("distance", Value::Int(distance)),
            ]),
            Expr::Var(p),
        );
    }
    db.insert_table("trips", trips);

    let mut session = SqlSession::with_seed(db, MechanismParams::paper_edge_privacy(1.0), 3);
    let release = session
        .query_scalar("SELECT SUM(distance) FROM trips WHERE distance > 1")
        .unwrap();
    assert_eq!(release.true_answer, 20.0);
}

#[test]
fn unqualified_columns_resolve_across_joined_tables() {
    // `place` only exists in visits, `city` only in residents: both resolve
    // without qualifiers even in a join.
    let sql = "SELECT COUNT(*) FROM visits v JOIN residents r ON v.person = r.person \
               WHERE place = 'museum' AND city = 'rome'";
    let output = session().evaluate(sql).unwrap();
    assert_eq!(output.len(), 2); // ada and bo, both rome, both at the museum
}

/// Every rejected construct gets an `Unsupported` error whose span points at
/// the offending keyword and whose rendering underlines it.
#[test]
fn rejected_constructs_have_precise_spans_and_messages() {
    let cases: &[(&str, &str, &str)] = &[
        (
            "SELECT COUNT(*) FROM t WHERE NOT a = 1",
            "negation (`NOT`)",
            "NOT",
        ),
        (
            "SELECT COUNT(*) FROM t WHERE a NOT IN (1)",
            "`NOT IN`",
            "NOT",
        ),
        (
            "SELECT COUNT(*) FROM t WHERE a = 1 OR b = 2",
            "disjunction (`OR`)",
            "OR",
        ),
        (
            "SELECT COUNT(*) FROM t LEFT JOIN u ON t.a = u.a",
            "outer joins",
            "LEFT",
        ),
        (
            "SELECT COUNT(*) FROM t RIGHT JOIN u ON t.a = u.a",
            "outer joins",
            "RIGHT",
        ),
        (
            "SELECT COUNT(*) FROM t FULL OUTER JOIN u ON t.a = u.a",
            "outer joins",
            "FULL",
        ),
        (
            "SELECT COUNT(*) FROM t UNION SELECT COUNT(*) FROM u",
            "`UNION`",
            "UNION",
        ),
        (
            "SELECT COUNT(*) FROM t EXCEPT SELECT COUNT(*) FROM u",
            "`EXCEPT`",
            "EXCEPT",
        ),
        (
            "SELECT COUNT(*) FROM t INTERSECT SELECT COUNT(*) FROM u",
            "`INTERSECT`",
            "INTERSECT",
        ),
        (
            "SELECT COUNT(*) FROM t GROUP BY a, b",
            "multi-column `GROUP BY`",
            ",",
        ),
        ("SELECT COUNT(*) FROM t ORDER BY a", "`ORDER BY`", "ORDER"),
        ("SELECT COUNT(*) FROM t HAVING a = 1", "`HAVING`", "HAVING"),
        ("SELECT DISTINCT COUNT(*) FROM t", "`DISTINCT`", "DISTINCT"),
    ];
    for (sql, want_construct, want_keyword) in cases {
        match parse(sql) {
            Err(SqlError::Unsupported {
                construct, span, ..
            }) => {
                assert_eq!(&construct, want_construct, "for {sql:?}");
                assert_eq!(&span.slice(sql), want_keyword, "for {sql:?}");
                let rendered = SqlError::Unsupported {
                    construct: construct.clone(),
                    reason: String::new(),
                    span,
                }
                .render(sql);
                let caret_line = rendered.lines().last().unwrap();
                let caret_col = caret_line
                    .find('^')
                    .unwrap_or_else(|| panic!("no caret for {sql:?}: {rendered}"));
                // The carets sit under the offending keyword.
                let source_line = rendered.lines().nth(1).unwrap();
                assert!(
                    source_line[caret_col..].starts_with(want_keyword),
                    "for {sql:?}: {rendered}"
                );
            }
            other => panic!("expected Unsupported for {sql:?}, got {other:?}"),
        }
    }
}

/// Structural check: positive Boolean expressions only (no negation exists in
/// `Expr`, so this documents and guards the invariant that executing a plan
/// yields expressions built from variables with ∧/∨ alone).
fn assert_positive(expr: &Expr) {
    match expr {
        Expr::True | Expr::False | Expr::Var(_) => {}
        Expr::And(children) | Expr::Or(children) => children.iter().for_each(assert_positive),
    }
}

/// Builds a random-but-valid join query over the residents/visits schema.
///
/// `spec` drives the shape: for each join step `(use_visits, prior, cols)`
/// pick the joined table, the earlier alias to connect to, and which column
/// pair to equate. Always planable; the interesting property is downstream.
fn build_sql(spec: &[(bool, u8, u8)], with_filter: bool) -> String {
    let columns_of = |is_visits: bool| -> [&'static str; 2] {
        if is_visits {
            ["person", "place"]
        } else {
            ["person", "city"]
        }
    };
    // Alias 0 is always the FROM table (visits).
    let mut tables = vec![true];
    let mut sql = String::from("SELECT COUNT(*) FROM visits t0");
    for (i, &(use_visits, prior, cols)) in spec.iter().enumerate() {
        let alias = i + 1;
        let prior = prior as usize % tables.len();
        let new_cols = columns_of(use_visits);
        let prior_cols = columns_of(tables[prior]);
        let new_col = new_cols[cols as usize % 2];
        let prior_col = prior_cols[(cols as usize / 2) % 2];
        sql.push_str(&format!(
            " JOIN {} t{alias} ON t{alias}.{new_col} = t{prior}.{prior_col}",
            if use_visits { "visits" } else { "residents" }
        ));
        tables.push(use_visits);
    }
    if with_filter {
        sql.push_str(" WHERE t0.person <> 'zz'");
    }
    sql
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any generated join query compiles, executes, and yields provenance
    /// annotations that are (a) structurally negation-free and (b) monotone:
    /// adding a participant to a subset never shrinks the query answer —
    /// verified exhaustively over all participant subsets.
    #[test]
    fn generated_join_queries_produce_monotone_provenance(
        spec in proptest::collection::vec((any::<bool>(), 0u8..8, 0u8..4), 0..3),
        with_filter in any::<bool>(),
    ) {
        let sql = build_sql(&spec, with_filter);
        let session = session();
        let output = session.evaluate(&sql).unwrap_or_else(|e| {
            panic!("query failed to evaluate: {sql:?}: {}", e.render(&sql))
        });

        for (_, expr) in output.iter() {
            assert_positive(expr);
        }

        let query = SensitiveKRelation::counting(&output);
        prop_assert!(
            check_monotonicity_exhaustive(&query).is_ok(),
            "non-monotone query answer for {sql:?}"
        );
    }
}
