//! Sequence-related helpers (`choose`, `shuffle`).

use crate::Rng;

/// Random selection and shuffling on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// A uniformly random element, or `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// `amount` distinct elements in random order (all of them when the
    /// slice is shorter), as an iterator like the real API's.
    fn choose_multiple<'a, R: Rng + ?Sized>(
        &'a self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }

    fn choose_multiple<'a, R: Rng + ?Sized>(
        &'a self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&'a T> {
        // Partial Fisher–Yates over an index vector.
        let mut indices: Vec<usize> = (0..self.len()).collect();
        let amount = amount.min(self.len());
        for i in 0..amount {
            let j = rng.gen_range(i..indices.len());
            indices.swap(i, j);
        }
        indices
            .into_iter()
            .take(amount)
            .map(|i| &self[i])
            .collect::<Vec<_>>()
            .into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_returns_an_element() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs = [1, 2, 3, 4];
        for _ in 0..20 {
            assert!(xs.contains(xs.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }
}
