//! Standard distributions and range sampling.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Types with a "standard" distribution: uniform over `[0, 1)` for floats,
/// uniform over the whole domain for integers and `bool`.
pub trait Standard: Sized {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform below `bound` (> 0) without modulo bias (rejection over the
/// largest multiple of `bound` that fits in a `u64`).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - u64::MAX % bound;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

/// Ranges a value can be sampled from (`rng.gen_range(a..b)`).
pub trait SampleRange<T>: Sized {
    /// Samples uniformly from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
range_uint!(u8, u16, u32, u64, usize);

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let u = f64::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        // Include the upper endpoint by scaling over 2^53 − 1.
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + (hi - lo) * u
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn signed_ranges_cover_negative_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut saw_negative = false;
        for _ in 0..200 {
            let v = rng.gen_range(-10i32..=-1);
            assert!((-10..=-1).contains(&v));
            saw_negative = true;
        }
        assert!(saw_negative);
    }

    #[test]
    fn unit_inclusive_range_hits_interior() {
        let mut rng = StdRng::seed_from_u64(2);
        let vals: Vec<f64> = (0..100).map(|_| rng.gen_range(0.0..=1.0)).collect();
        assert!(vals.iter().any(|&v| v > 0.1 && v < 0.9));
    }
}
