//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this minimal, dependency-free implementation instead of the real crate.
//! It is API-compatible (for the parts used here: [`Rng`], [`RngCore`],
//! [`SeedableRng`], [`rngs::StdRng`], [`seq::SliceRandom`]) but NOT
//! bit-compatible: seeds produce different streams than the real `rand`.
//! Everything in the workspace only relies on statistical quality and
//! determinism given a seed, both of which this implementation provides
//! (xoshiro256++ seeded through SplitMix64).

pub mod distributions;
pub mod rngs;
pub mod seq;

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// The next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32;
    /// The next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T` (uniform over
    /// `[0, 1)` for floats, uniform over the whole domain for integers and
    /// `bool`).
    fn gen<T: distributions::Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, S: distributions::SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded internally).
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_f64_is_unit_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&w));
            let z = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(5);
        let dynrng: &mut dyn RngCore = &mut rng;
        let x: f64 = dynrng.gen();
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
