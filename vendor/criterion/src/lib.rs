//! Offline stand-in for the subset of the `criterion` API this workspace's
//! benchmarks use.
//!
//! The build environment has no access to crates.io. This stub keeps the
//! bench targets compiling and gives quick wall-clock numbers under
//! `cargo bench` (median over a handful of timed batches — no statistics,
//! no reports, no comparisons with previous runs).

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Drives the timing of one benchmark body.
pub struct Bencher {
    batches: u32,
}

impl Bencher {
    /// Times `f`, running it in several batches and keeping the best batch
    /// average.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        black_box(f());
        let mut best = Duration::MAX;
        for _ in 0..self.batches {
            let start = Instant::now();
            black_box(f());
            best = best.min(start.elapsed());
        }
        println!(
            "    time: {best:>12.2?}  (best of {} batches)",
            self.batches
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Benchmarks a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        println!("bench: {id}");
        let mut b = Bencher {
            batches: self.sample_size.max(2) as u32,
        };
        f(&mut b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { criterion: self }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Benchmarks a closure under `id` within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        println!("  bench: {id}");
        let mut b = Bencher {
            batches: self.criterion.sample_size.max(2) as u32,
        };
        f(&mut b);
        self
    }

    /// Benchmarks a closure with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        println!("  bench: {id}");
        let mut b = Bencher {
            batches: self.criterion.sample_size.max(2) as u32,
        };
        f(&mut b, input);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a bench group function calling each target with a `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given bench groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grp");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| b.iter(|| x * x));
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }

    #[test]
    fn api_surface_works() {
        let mut c = Criterion::default();
        tiny_bench(&mut c);
        assert_eq!(
            BenchmarkId::from_parameter("30p_50t").to_string(),
            "30p_50t"
        );
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
    }
}
