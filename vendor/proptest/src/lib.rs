//! Offline stand-in for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this minimal property-testing harness. Compared to the real `proptest` it
//! keeps the surface the tests rely on — [`strategy::Strategy`] with
//! `prop_map` / `prop_flat_map` / `prop_recursive`, range and tuple
//! strategies, [`collection::vec`] / [`collection::btree_set`], [`arbitrary::any`],
//! `proptest!` / `prop_oneof!` / `prop_assert!` — but drops shrinking:
//! a failing case panics with its case index instead of a minimised
//! counterexample. Case generation is deterministic per test name, so
//! failures reproduce.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { … } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($arg_pat:pat in $arg_strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(
                        let $arg_pat =
                            $crate::strategy::Strategy::sample(&($arg_strat), &mut rng);
                    )+
                    let run = || -> () { $body };
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest case {}/{} of {} failed",
                            case + 1,
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Uniform choice between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}
