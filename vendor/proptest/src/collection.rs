//! Collection strategies (`vec`, `btree_set`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// A size specification: an exact length or an inclusive interval.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.lo >= self.hi {
            self.lo
        } else {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`fn@vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a target size drawn from `size`.
///
/// If the element strategy cannot produce enough distinct values the set may
/// come out smaller than requested (the real `proptest` rejects instead).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < target * 50 + 50 {
            out.insert(self.element.sample(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_exact_and_ranged_sizes() {
        let mut rng = TestRng::for_test("vec-sizes");
        for _ in 0..50 {
            assert_eq!(vec(0u32..5, 3usize).sample(&mut rng).len(), 3);
            let ranged = vec(0u32..5, 1..4).sample(&mut rng);
            assert!((1..4).contains(&ranged.len()));
        }
    }

    #[test]
    fn btree_set_produces_distinct_elements_in_target_range() {
        let mut rng = TestRng::for_test("set-sizes");
        for _ in 0..50 {
            let s = btree_set(0u32..6, 2..4).sample(&mut rng);
            assert!((2..4).contains(&s.len()), "len {}", s.len());
        }
    }
}
