//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike the real `proptest` there is no value tree and no shrinking: a
/// strategy is just a sampler.
pub trait Strategy: 'static {
    /// The type of generated values.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + 'static,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `pred`, resampling instead. Unlike
    /// the real crate (which tracks global rejection quotas) this stub
    /// bounds the resampling per draw and panics with `whence` when the
    /// filter looks unsatisfiable.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Shuffles the elements of a generated collection (Fisher–Yates on the
    /// deterministic test RNG). Only `Vec` values are supported by the stub.
    fn prop_shuffle<T>(self) -> Shuffle<Self>
    where
        Self: Strategy<Value = Vec<T>> + Sized,
        T: 'static,
    {
        Shuffle { inner: self }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `recurse`
    /// wraps an inner strategy into a deeper one. `depth` bounds the nesting;
    /// the size hints of the real API are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        R: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(current.clone()).boxed();
            current = Union::new(vec![current, deeper]).boxed();
        }
        current
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + 'static,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + 'static,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.inner.sample(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive samples: {}",
            self.whence
        );
    }
}

/// See [`Strategy::prop_shuffle`].
pub struct Shuffle<S> {
    inner: S,
}

impl<S, T> Strategy for Shuffle<S>
where
    S: Strategy<Value = Vec<T>>,
    T: 'static,
{
    type Value = Vec<T>;
    fn sample(&self, rng: &mut TestRng) -> Vec<T> {
        let mut items = self.inner.sample(rng);
        for i in (1..items.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
        items
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + 'static,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice between strategies (the engine behind `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy over empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy over empty range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "strategy over empty range");
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy-tests")
    }

    #[test]
    fn ranges_and_just_sample_in_bounds() {
        let mut rng = rng();
        for _ in 0..100 {
            let v = (3u32..=6).sample(&mut rng);
            assert!((3..=6).contains(&v));
            let w = (-3.0..3.0f64).sample(&mut rng);
            assert!((-3.0..3.0).contains(&w));
            assert_eq!(Just(7i32).sample(&mut rng), 7);
        }
    }

    #[test]
    fn map_flat_map_and_tuples_compose() {
        let mut rng = rng();
        let strat = (1usize..4)
            .prop_flat_map(|n| (Just(n), crate::collection::vec(0u32..10, n)))
            .prop_map(|(n, v)| (n, v.len()));
        for _ in 0..50 {
            let (n, len) = strat.sample(&mut rng);
            assert_eq!(n, len);
        }
    }

    #[test]
    fn union_picks_all_options() {
        let mut rng = rng();
        let strat = Union::new(vec![Just(0u8).boxed(), Just(1u8).boxed()]);
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        enum Tree {
            Leaf(u32),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(n) => {
                    assert!(*n < 8, "leaf out of range");
                    1
                }
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut rng = rng();
        let strat = (0u32..8)
            .prop_map(Tree::Leaf)
            .prop_recursive(2, 8, 3, |inner| {
                crate::collection::vec(inner, 2..4).prop_map(Tree::Node)
            });
        for _ in 0..100 {
            assert!(depth(&strat.sample(&mut rng)) <= 3);
        }
    }
}
