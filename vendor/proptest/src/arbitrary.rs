//! The `any::<T>()` entry point.

use crate::strategy::{BoxedStrategy, Strategy};
use crate::test_runner::TestRng;

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized + 'static {
    /// The full-domain strategy for this type.
    fn arbitrary() -> BoxedStrategy<Self>;
}

/// The canonical strategy for `T` (`any::<bool>()`, `any::<u64>()`, …).
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

struct FromFn<T>(fn(&mut TestRng) -> T);

impl<T: 'static> Strategy for FromFn<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

macro_rules! arbitrary_via {
    ($($t:ty => $f:expr;)*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<Self> {
                FromFn::<$t>($f).boxed()
            }
        }
    )*};
}

arbitrary_via! {
    bool => |rng| rng.next_u64() & 1 == 1;
    u8 => |rng| rng.next_u64() as u8;
    u16 => |rng| rng.next_u64() as u16;
    u32 => |rng| rng.next_u64() as u32;
    u64 => |rng| rng.next_u64();
    usize => |rng| rng.next_u64() as usize;
    i8 => |rng| rng.next_u64() as i8;
    i16 => |rng| rng.next_u64() as i16;
    i32 => |rng| rng.next_u64() as i32;
    i64 => |rng| rng.next_u64() as i64;
    isize => |rng| rng.next_u64() as isize;
    // Finite floats over a moderate range; the workspace's tests do not rely
    // on NaN/infinity edge cases.
    f64 => |rng| (rng.unit_f64() - 0.5) * 2e6;
    f32 => |rng| ((rng.unit_f64() - 0.5) * 2e6) as f32;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::for_test("any-bool");
        let strat = any::<bool>();
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::for_test("any-u64");
        let strat = any::<u64>();
        let a = strat.sample(&mut rng);
        let b = strat.sample(&mut rng);
        assert_ne!(a, b);
    }
}
