//! Test configuration and the deterministic case RNG.

/// Configuration accepted by `#![proptest_config(…)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test random source (SplitMix64 seeded from the test
/// name), so failures reproduce run-to-run.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG whose stream is a pure function of `test_name`.
    pub fn for_test(test_name: &str) -> Self {
        // FNV-1a over the test name gives a stable seed.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: seed }
    }

    /// The next raw 64-bit word (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform below `bound` (> 0), bias-free.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::for_test("y");
        assert_ne!(TestRng::for_test("x").next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::for_test("below");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
